// asilkit-archcheck — architecture conformance checker for the asilkit
// source tree.  Scans a source root's quoted #include graph, checks it
// against the declared layer DAG, and reports violations as text and
// (optionally) SARIF 2.1.0.
//
// Exit codes mirror the lint CLI so CI can distinguish outcomes:
//   0 = clean, 3 = warning-level findings only, 4 = error-level findings,
//   2 = usage error, 1 = I/O or parse failure.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "archcheck.h"
#include "core/error.h"
#include "io/json.h"

namespace {

void usage(std::ostream& os) {
    os << "usage: asilkit-archcheck --root <src-dir> --layers <layers.json>"
          " [--sarif <out.sarif>] [--quiet]\n"
          "  --root    source tree to scan (required)\n"
          "  --layers  declared layer DAG (required)\n"
          "  --sarif   also write findings as SARIF 2.1.0 to this path\n"
          "  --quiet   suppress the text report on stdout\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::string root;
    std::string layers_path;
    std::string sarif_path;
    bool quiet = false;

    const std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        const auto take_value = [&](std::string& slot) -> bool {
            if (i + 1 >= args.size()) {
                std::cerr << "asilkit-archcheck: " << a << " needs a value\n";
                return false;
            }
            slot = args[++i];
            return true;
        };
        if (a == "--root") {
            if (!take_value(root)) return 2;
        } else if (a == "--layers") {
            if (!take_value(layers_path)) return 2;
        } else if (a == "--sarif") {
            if (!take_value(sarif_path)) return 2;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "asilkit-archcheck: unknown argument '" << a << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (root.empty() || layers_path.empty()) {
        usage(std::cerr);
        return 2;
    }

    try {
        const asilkit::archcheck::LayerSpec spec = asilkit::archcheck::load_layers(layers_path);
        const asilkit::archcheck::Report report = asilkit::archcheck::analyze_tree(root, spec);
        if (!quiet) std::cout << asilkit::archcheck::to_text(report);
        if (!sarif_path.empty()) {
            asilkit::io::save_json_file(asilkit::archcheck::to_sarif(report), sarif_path);
            if (!quiet) std::cout << "wrote SARIF to " << sarif_path << "\n";
        }
        bool has_error = false;
        bool has_warning = false;
        for (const asilkit::archcheck::Finding& f : report.findings) {
            if (f.level == "warning") {
                has_warning = true;
            } else {
                has_error = true;
            }
        }
        if (has_error) return 4;
        if (has_warning) return 3;
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "asilkit-archcheck: " << e.what() << "\n";
        return 1;
    }
}

// Fault-tree modularization (Dutuit–Rauzy, IEEE Trans. Reliability 1996).
//
// A *module* is a gate whose subtree shares no node with the rest of the
// tree: every basic event and every gate reachable from the module root
// is reachable *only* through it.  Modules are what make evaluation
// compositional — a module's top probability is a function of its own
// subtree alone, so it can be computed once, cached, and replayed when
// the same subtree reappears in a different candidate architecture.
// That is the heart of incremental candidate evaluation: a single
// Expand/Connect/Reduce or resource-merge move perturbs one region of
// the fault tree, and every untouched module replays from cache.
//
// Detection is one DFS over the DAG reachable from top() with visit
// dates, in the style of Dutuit & Rauzy's linear-time algorithm: every
// edge is traversed exactly once (children of an already-visited gate
// are not re-expanded, but the arrival itself is dated), so an edge
// entering a subtree from outside necessarily dates its target outside
// the subtree root's [first-arrival, completion] window.  A gate is a
// module iff the visit dates of all strict descendants stay inside its
// window.  A gate that is itself referenced from several parents can
// still be a module (its own revisits are excluded from its test); its
// pseudo-variable then simply appears several times in the enclosing
// region, which the BDD evaluation handles exactly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ftree/fault_tree.h"

namespace asilkit::ftree {

/// One module of a decomposition.  `child_modules` lists the directly
/// nested modules (indices into ModuleDecomposition::modules) in
/// first-seen order of a depth-first traversal of the module's local
/// region; evaluation replaces each with a pseudo-variable.
struct Module {
    FtRef root{};
    /// Context-free structural hash of the module's full subtree
    /// (local region composed with nested module hashes): two modules
    /// hash equal only when their subtrees are isomorphic with the same
    /// gate kinds, sharing pattern and failure rates — regardless of
    /// the tree surrounding them.  This is the engine's per-module
    /// cache key material.
    std::uint64_t subtree_hash = 0;
    std::vector<std::uint32_t> child_modules;
    /// Distinct basic events in the local region (excludes nested
    /// modules' events).
    std::size_t basic_events = 0;
};

struct ModuleDecomposition {
    /// Children-before-parents; back() is the top module.
    std::vector<Module> modules;
    /// Gate index -> index in `modules`, for module-root gates.
    std::unordered_map<std::uint32_t, std::uint32_t> module_of_gate;

    [[nodiscard]] std::size_t size() const noexcept { return modules.size(); }
    [[nodiscard]] const Module& top() const { return modules.back(); }
};

/// Detects the independent modules of the tree reachable from ft.top()
/// in linear time.  The top node is always a module (possibly the only
/// one); a top that is a single basic event yields one leaf module.
[[nodiscard]] ModuleDecomposition find_modules(const FaultTree& ft);

}  // namespace asilkit::ftree

file(REMOVE_RECURSE
  "libasilkit_core.a"
)

# Empty dependencies file for bench_bdd_engine.
# This may be replaced when dependencies are built.

// Process-global metrics registry: monotonic counters, gauges and
// fixed-bucket histograms, registered by stable string id.
//
// The DSE pipeline (engine -> ftree -> bdd) runs thousands of candidate
// evaluations across a thread pool; this registry is what lets a run be
// *measured* instead of asserted.  Design constraints, in order:
//   * hot-path cost: a counter increment is one relaxed atomic add on a
//     64-byte-padded cell (no false sharing between adjacent metrics),
//     with the registry lookup hoisted out of the hot path via a
//     function-local static reference at each instrumentation site;
//   * exactness: counters are plain monotonic uint64 adds — N threads
//     incrementing concurrently sum exactly (tested);
//   * stable ids: every metric is registered by a dotted string id
//     ("bdd.apply_hits") that downstream tooling (bench_to_json, the
//     `asilkit stats` CLI, docs/observability.md) treats as API.
//
// Sampling that costs more than an atomic add (latency histograms, i.e.
// anything needing clock reads) is gated behind detail_enabled(): one
// relaxed load + branch when off, so instrumented binaries pay nothing
// measurable by default.  Snapshots are taken under the registry mutex
// but only read atomics, so they never block the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"

namespace asilkit::obs {

/// Monotonic counter.  Padded to a cache line so registering two hot
/// counters back-to-back never induces false sharing.
struct alignas(64) Counter {
    void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    void inc() noexcept { add(1); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    friend class Registry;
    std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge with a lock-free running-maximum variant.
struct alignas(64) Gauge {
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    /// Raises the gauge to `v` if larger (CAS loop; used for high-water
    /// marks such as bdd.node_high_water).
    void set_max(double v) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    friend class Registry;
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds; an observation lands in the first bucket with v <= bound,
/// values above the last bound land in the implicit overflow bucket.
/// Bucket counts are exact (relaxed atomic adds); `sum` accumulates via
/// a CAS loop and is exact up to floating-point addition order.
class Histogram {
public:
    void observe(double v) noexcept;

    [[nodiscard]] std::span<const double> bounds() const noexcept { return bounds_; }
    [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
        return counts_[i].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1 (overflow)
    alignas(64) std::atomic<std::uint64_t> count_{0};
    alignas(64) std::atomic<double> sum_{0.0};
};

/// Default latency bounds in nanoseconds: 1 µs doubling up to ~8.6 s
/// (24 buckets + overflow) — wide enough for a cached candidate replay
/// (µs) and a cold EcoTwin exploration phase (s) in one histogram.
[[nodiscard]] std::span<const double> latency_bounds_ns() noexcept;

/// Estimates the q-quantile (q in [0, 1]) of a fixed-bucket histogram
/// from its cumulative counts, Prometheus-style: the target rank is
/// located by walking the buckets and the value is interpolated
/// linearly inside the bucket that holds it (bucket 0 starts at 0).  A
/// rank landing in the overflow bucket returns the last bound — the
/// histogram cannot see past it.  Returns 0 when the histogram is
/// empty.  `counts` has bounds.size() + 1 entries (last = overflow).
/// Used by the span profiler's p50/p95 columns (obs/profile.h).
[[nodiscard]] double histogram_quantile(std::span<const double> bounds,
                                        std::span<const std::uint64_t> counts, double q) noexcept;

/// One value of every registered metric, in registration-id order
/// (std::map keeps snapshots deterministic and diffs clean).
struct MetricsSnapshot {
    struct CounterSample {
        std::string id;
        std::uint64_t value = 0;
    };
    struct GaugeSample {
        std::string id;
        double value = 0.0;
    };
    struct HistogramSample {
        std::string id;
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /// Value of a counter by id, or `fallback` when absent.
    [[nodiscard]] std::uint64_t counter_or(std::string_view id,
                                           std::uint64_t fallback = 0) const noexcept;
    [[nodiscard]] double gauge_or(std::string_view id, double fallback = 0.0) const noexcept;

    /// {"counters":{id:n,...},"gauges":{...},"histograms":{id:{...}}}.
    [[nodiscard]] std::string to_json() const;
    /// Aligned human-readable rendering (the `asilkit stats` output).
    [[nodiscard]] std::string to_text() const;
};

class Registry {
public:
    /// The process-global registry.  Intentionally leaked so that
    /// thread-local trace buffers and static instrumentation sites may
    /// touch it during shutdown in any destruction order.
    [[nodiscard]] static Registry& global();

    /// Registers (or finds) a metric by stable id.  The returned
    /// reference is valid for the process lifetime; instrumentation
    /// sites cache it in a function-local static so the hot path is a
    /// single atomic operation.
    [[nodiscard]] Counter& counter(std::string_view id);
    [[nodiscard]] Gauge& gauge(std::string_view id);
    /// First registration fixes the bucket bounds; later calls with the
    /// same id return the existing histogram regardless of `bounds`.
    [[nodiscard]] Histogram& histogram(std::string_view id, std::span<const double> bounds);

    [[nodiscard]] MetricsSnapshot snapshot() const;

    /// Zeroes every registered metric (registrations survive).  Test
    /// hook; production snapshots are monotonic and diffed instead.
    void reset();

private:
    Registry() = default;

    // The registration maps are guarded; the metric CELLS they own are
    // not — a registered Counter/Gauge/Histogram is all-atomic inside
    // and lives for the process, so instrumentation sites update them
    // lock-free through the references counter()/gauge()/histogram()
    // hand out.
    mutable core::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
        GUARDED_BY(mutex_);
};

namespace detail {
extern std::atomic<bool> g_detail;
}  // namespace detail

/// Gate for sampling that needs clock reads (latency histograms and the
/// like): one relaxed load + branch when off.  Enabled by the CLI for
/// --trace/--metrics runs and by `asilkit stats`.
[[nodiscard]] inline bool detail_enabled() noexcept {
    return detail::g_detail.load(std::memory_order_relaxed);
}
void set_detail_enabled(bool on) noexcept;

/// RAII latency sample: observes the elapsed nanoseconds into `h` at
/// scope exit.  Reads no clock at all when detail sampling is off at
/// construction.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& h) noexcept
        : hist_(detail_enabled() ? &h : nullptr),
          start_(hist_ != nullptr ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{}) {}
    ~ScopedTimer() {
        if (hist_ == nullptr) return;
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        hist_->observe(static_cast<double>(ns));
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Histogram* hist_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace asilkit::obs

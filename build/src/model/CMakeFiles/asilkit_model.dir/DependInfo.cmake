
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/architecture.cpp" "src/model/CMakeFiles/asilkit_model.dir/architecture.cpp.o" "gcc" "src/model/CMakeFiles/asilkit_model.dir/architecture.cpp.o.d"
  "/root/repo/src/model/blocks.cpp" "src/model/CMakeFiles/asilkit_model.dir/blocks.cpp.o" "gcc" "src/model/CMakeFiles/asilkit_model.dir/blocks.cpp.o.d"
  "/root/repo/src/model/failure_rates.cpp" "src/model/CMakeFiles/asilkit_model.dir/failure_rates.cpp.o" "gcc" "src/model/CMakeFiles/asilkit_model.dir/failure_rates.cpp.o.d"
  "/root/repo/src/model/node.cpp" "src/model/CMakeFiles/asilkit_model.dir/node.cpp.o" "gcc" "src/model/CMakeFiles/asilkit_model.dir/node.cpp.o.d"
  "/root/repo/src/model/resource.cpp" "src/model/CMakeFiles/asilkit_model.dir/resource.cpp.o" "gcc" "src/model/CMakeFiles/asilkit_model.dir/resource.cpp.o.d"
  "/root/repo/src/model/validation.cpp" "src/model/CMakeFiles/asilkit_model.dir/validation.cpp.o" "gcc" "src/model/CMakeFiles/asilkit_model.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

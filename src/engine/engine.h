// The evaluation engine: candidate scoring as a batched, parallel,
// memoised, *incremental* service.
//
// Design-space exploration (paper Section IX) and the mapping search
// evaluate thousands of candidate architectures, each requiring a
// model -> fault tree -> BDD -> exact probability pipeline.  The engine
// makes that pipeline scale:
//   * a fixed thread pool evaluates independent candidates
//     concurrently — every evaluation owns its BddManagers, so no locks
//     sit on the apply path (see thread_pool.h);
//   * every canonical tree is split into independent modules
//     (ftree/modules.h) and evaluated module-by-module: each module's
//     local region compiles to its own small BDD, nested modules enter
//     as pseudo-variables — exact, since modules share no basic events
//     with the rest of the tree;
//   * an evaluation cache memoises at two granularities: whole
//     canonical trees (a hit skips everything) and, with `modularize`
//     on, individual modules — so a candidate move that perturbs one
//     region of the tree replays every untouched module from cache and
//     recompiles only the modules its basic events intersect
//     (see eval_cache.h).
//
// Determinism contract: for a fixed model and options, results are
// bitwise identical regardless of thread count, cache capacity AND the
// modularize flag.  The modular evaluation order is always used, so a
// whole-tree hit, a per-module replay and a fresh evaluation all
// produce the same doubles; callers that batch through the pool reduce
// their results in input order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/probability.h"
#include "engine/eval_cache.h"
#include "engine/thread_pool.h"
#include "model/architecture.h"
#include "obs/metrics.h"

namespace asilkit::engine {

struct EngineOptions {
    /// Evaluation lanes (including the calling thread).  0 = take the
    /// ASILKIT_THREADS environment variable, falling back to
    /// std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// Maximum number of cached evaluations; 0 disables the cache.
    std::size_t cache_capacity = std::size_t{1} << 16;
    /// Memoise per fault-tree module in addition to per whole tree: on
    /// a whole-tree miss, untouched modules replay from cache and only
    /// the modules whose basic events the candidate move touched are
    /// recompiled.  Off = whole-tree keying only (the PR-1 behaviour).
    /// Never changes results — evaluation is modular either way.
    bool modularize = true;
};

/// Resolves `requested` (0 = ASILKIT_THREADS env var, else hardware
/// concurrency) and clamps the result to [1, 256].
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

class EvalEngine {
public:
    explicit EvalEngine(const EngineOptions& options = {});

    /// Evaluation lanes actually available, env var applied.
    [[nodiscard]] unsigned threads() const noexcept { return pool_.thread_count(); }

    /// Drop-in replacement for analysis::analyze_failure_probability,
    /// memoised by the structural hash of the generated fault tree.
    /// Thread-safe: may be called concurrently from pool tasks.
    [[nodiscard]] analysis::ProbabilityResult analyze(const ArchitectureModel& m,
                                                      const analysis::ProbabilityOptions& options);

    /// Scores every model of a batch concurrently; results in input
    /// order.  Null entries are skipped (default-constructed result).
    [[nodiscard]] std::vector<analysis::ProbabilityResult> analyze_batch(
        std::span<const ArchitectureModel* const> models,
        const analysis::ProbabilityOptions& options);

    /// The pool, for callers that parallelise more than the analysis
    /// itself (e.g. building the trial model inside the task).
    [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

    /// Everything the engine counts, in one snapshot.  `cache` is the
    /// raw lookup ledger (tree + module lookups combined); the engine
    /// counters split it by granularity: a tree hit ends the evaluation,
    /// a tree miss decomposes into modules, each of which hits (replayed
    /// from a previous evaluation) or misses (recompiled).  With
    /// modularize off the module counters stay zero.
    ///
    /// The counters themselves live in the process-global obs registry
    /// (ids "engine.analyze_calls", "engine.tree_hits", ... — see
    /// docs/observability.md); this snapshot is the per-instance view,
    /// computed against the registry values captured at construction.
    struct Stats {
        EvalCache::Stats cache;
        std::uint64_t analyze_calls = 0;
        std::uint64_t tree_hits = 0;
        std::uint64_t tree_misses = 0;
        std::uint64_t module_hits = 0;
        std::uint64_t module_misses = 0;
        /// Candidates the lint pre-filter rejected before fault-tree
        /// generation (explore::search_mapping reports them here so DSE
        /// accounting stays in one snapshot).
        std::uint64_t lint_rejections = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// Adds to the lint-rejection counter; called by search layers that
    /// discard candidates before they reach analyze().
    void note_lint_rejections(std::uint64_t n) noexcept { lint_rejections_.add(n); }

    [[nodiscard]] EvalCache::Stats cache_stats() const { return cache_.stats(); }
    void clear_cache() { cache_.clear(); }

private:
    ThreadPool pool_;
    EvalCache cache_;
    bool modularize_;
    // Registry-backed counters (relaxed atomic adds: analyze() runs
    // concurrently from pool tasks; stats() is a monitoring snapshot,
    // not a synchronisation point).  `base_` anchors the per-instance
    // stats() view against the process-global registry values.
    obs::Counter& analyze_calls_;
    obs::Counter& tree_hits_;
    obs::Counter& tree_misses_;
    obs::Counter& module_hits_;
    obs::Counter& module_misses_;
    obs::Counter& lint_rejections_;
    Stats base_;
};

}  // namespace asilkit::engine

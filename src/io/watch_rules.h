// JSON loader for watchdog rule files (`--watch-rules rules.json`).
//
// The obs layer depends only on core, so the parsing of rule files
// lives here in io.  Accepted document shapes:
//   {"rules": [ <rule>, ... ]}    or a bare    [ <rule>, ... ]
// where each rule is
//   {"id": "queue-deep",                  // optional: defaults to the metric
//    "metric": "engine.queue_depth",     // registry id, or "a/b" ratio
//    "op": ">",                          // <, <=, >, >= (or lt/le/gt/ge)
//    "threshold": 500,
//    "for_ms": 5000}                     // optional: defaults to 0
// Malformed documents throw IoError naming the offending rule.
#pragma once

#include <string>
#include <vector>

#include "obs/watchdog.h"

namespace asilkit::io {

class Json;

[[nodiscard]] std::vector<obs::WatchdogRule> parse_watch_rules(const Json& doc);
[[nodiscard]] std::vector<obs::WatchdogRule> load_watch_rules(const std::string& path);

}  // namespace asilkit::io

#include "obs/watchdog.h"

#include <cstdio>
#include <ostream>

#include "obs/metrics.h"

namespace asilkit::obs {
namespace {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    for (int precision = 6; precision < 17; ++precision) {
        char trial[40];
        std::snprintf(trial, sizeof(trial), "%.*g", precision, v);
        std::sscanf(trial, "%lf", &parsed);
        if (parsed == v) return trial;
    }
    return buf;
}

/// Plain-id lookup: counters, then gauges, then the `.count`/`.sum`
/// projections of a histogram.
std::optional<double> lookup(std::string_view id, const MetricsSnapshot& snapshot) {
    for (const MetricsSnapshot::CounterSample& c : snapshot.counters) {
        if (c.id == id) return static_cast<double>(c.value);
    }
    for (const MetricsSnapshot::GaugeSample& g : snapshot.gauges) {
        if (g.id == id) return g.value;
    }
    for (const MetricsSnapshot::HistogramSample& h : snapshot.histograms) {
        if (id == h.id + ".count") return static_cast<double>(h.count);
        if (id == h.id + ".sum") return h.sum;
    }
    return std::nullopt;
}

bool satisfied(WatchdogRule::Op op, double value, double threshold) {
    switch (op) {
        case WatchdogRule::Op::Lt: return value < threshold;
        case WatchdogRule::Op::Le: return value <= threshold;
        case WatchdogRule::Op::Gt: return value > threshold;
        case WatchdogRule::Op::Ge: return value >= threshold;
    }
    return false;
}

}  // namespace

std::optional<WatchdogRule::Op> parse_op(std::string_view text) {
    if (text == "<" || text == "lt") return WatchdogRule::Op::Lt;
    if (text == "<=" || text == "le") return WatchdogRule::Op::Le;
    if (text == ">" || text == "gt") return WatchdogRule::Op::Gt;
    if (text == ">=" || text == "ge") return WatchdogRule::Op::Ge;
    return std::nullopt;
}

std::string WatchdogEvent::to_ndjson() const {
    std::string out = "{\"event\":\"";
    out += fired ? "fire" : "clear";
    out += "\",\"rule\":\"" + json_escape(rule) + "\",\"metric\":\"" + json_escape(metric);
    out += "\",\"value\":" + number(value) + ",\"threshold\":" + number(threshold);
    out += ",\"ts_ns\":" + std::to_string(ts_ns);
    out += ",\"window_ns\":" + std::to_string(window_ns) + "}";
    return out;
}

Watchdog::Watchdog(std::vector<WatchdogRule> rules) : rules_(std::move(rules)) {
    const core::MutexLock lock(mutex_);
    states_.resize(rules_.size());
}

void Watchdog::set_sink(std::ostream* sink) {
    const core::MutexLock lock(mutex_);
    sink_ = sink;
}

std::optional<double> Watchdog::resolve_metric(std::string_view metric,
                                               const MetricsSnapshot& snapshot) {
    const std::size_t slash = metric.find('/');
    if (slash == std::string_view::npos) return lookup(metric, snapshot);
    const std::optional<double> numerator = lookup(metric.substr(0, slash), snapshot);
    const std::optional<double> denominator = lookup(metric.substr(slash + 1), snapshot);
    if (!numerator || !denominator || *denominator == 0.0) return std::nullopt;
    return *numerator / *denominator;
}

void Watchdog::emit(const WatchdogEvent& event) {
    events_.push_back(event);
    if (event.fired) {
        static Counter& fired_total = Registry::global().counter("obs.watchdog.fired");
        fired_total.inc();
    }
    if (sink_ != nullptr) {
        *sink_ << event.to_ndjson() << "\n";
        sink_->flush();  // one complete line per event: tail -f friendly
    }
}

void Watchdog::evaluate(std::uint64_t now_ns, const MetricsSnapshot& snapshot) {
    const core::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const WatchdogRule& rule = rules_[i];
        RuleState& state = states_[i];
        const std::optional<double> value = resolve_metric(rule.metric, snapshot);
        const bool breached =
            value.has_value() && satisfied(rule.op, *value, rule.threshold);
        if (breached) {
            if (!state.breaching) {
                state.breaching = true;
                state.breach_start_ns = now_ns;
            }
            const std::uint64_t window = now_ns - state.breach_start_ns;
            if (!state.fired && window >= rule.for_ns) {
                state.fired = true;
                emit(WatchdogEvent{rule.id, rule.metric, true, *value, rule.threshold,
                                   now_ns, window});
            }
        } else {
            if (state.fired) {
                emit(WatchdogEvent{rule.id, rule.metric, false, value.value_or(0.0),
                                   rule.threshold, now_ns,
                                   now_ns - state.breach_start_ns});
            }
            state.breaching = false;
            state.fired = false;
        }
    }
}

std::vector<WatchdogEvent> Watchdog::events() const {
    const core::MutexLock lock(mutex_);
    return events_;
}

std::size_t Watchdog::fire_count() const {
    const core::MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const WatchdogEvent& e : events_) n += e.fired ? 1 : 0;
    return n;
}

}  // namespace asilkit::obs

#include "explore/pareto.h"

#include <algorithm>
#include <utility>

namespace asilkit::explore {

namespace {

/// Lexicographic (cost, failure_probability) order used by both the
/// batch sweep and the tracker staircase.
bool cost_prob_less(const TradeoffPoint& a, const TradeoffPoint& b) noexcept {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.failure_probability < b.failure_probability;
}

}  // namespace

bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) noexcept {
    const bool no_worse = a.cost <= b.cost && a.failure_probability <= b.failure_probability;
    const bool better = a.cost < b.cost || a.failure_probability < b.failure_probability;
    return no_worse && better;
}

std::vector<TradeoffPoint> pareto_front(const std::vector<TradeoffPoint>& points) {
    // Sort by (cost, probability); any dominator of p sorts strictly
    // before p, so p is non-dominated iff its probability is strictly
    // below every earlier point's (equal-cost ties: only the first of an
    // equal-probability run survives, matching the old unique() dedup).
    std::vector<TradeoffPoint> sorted = points;
    std::stable_sort(sorted.begin(), sorted.end(), cost_prob_less);
    std::vector<TradeoffPoint> front;
    double best_probability = 0.0;
    for (TradeoffPoint& p : sorted) {
        if (!front.empty() && p.failure_probability >= best_probability) continue;
        best_probability = p.failure_probability;
        front.push_back(std::move(p));
    }
    return front;
}

bool ParetoTracker::insert(TradeoffPoint p) {
    const core::MutexLock lock(mu_);
    ++offers_;
    // First staircase point at cost >= p.cost.
    auto it = std::lower_bound(front_.begin(), front_.end(), p,
                               [](const TradeoffPoint& a, const TradeoffPoint& b) {
                                   return a.cost < b.cost;
                               });
    // Everything before `it` is strictly cheaper; the nearest such point
    // has the minimum probability among them (probabilities descend), so
    // it alone decides whether p is dominated from the left.  A point at
    // equal cost dominates (or duplicates) p unless p's probability is
    // strictly lower.
    if (it != front_.begin() && std::prev(it)->failure_probability <= p.failure_probability) {
        return false;
    }
    if (it != front_.end() && it->cost == p.cost &&
        it->failure_probability <= p.failure_probability) {
        return false;
    }
    // p survives; evict the contiguous run it dominates (cost >= p.cost,
    // probability >= p.probability — staircase order makes it a prefix
    // of [it, end)).
    auto last = it;
    while (last != front_.end() && last->failure_probability >= p.failure_probability) ++last;
    it = front_.erase(it, last);
    front_.insert(it, std::move(p));
    ++updates_;
    return true;
}

std::vector<TradeoffPoint> ParetoTracker::front() const {
    const core::MutexLock lock(mu_);
    return front_;
}

std::size_t ParetoTracker::front_size() const {
    const core::MutexLock lock(mu_);
    return front_.size();
}

std::uint64_t ParetoTracker::updates() const {
    const core::MutexLock lock(mu_);
    return updates_;
}

std::uint64_t ParetoTracker::offers() const {
    const core::MutexLock lock(mu_);
    return offers_;
}

void ParetoTracker::clear() {
    const core::MutexLock lock(mu_);
    front_.clear();
    updates_ = 0;
    offers_ = 0;
}

}  // namespace asilkit::explore

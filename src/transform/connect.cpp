#include "transform/connect.h"

#include <algorithm>
#include <optional>

#include "core/error.h"
#include "model/blocks.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::transform {
namespace {

struct ConnectPlan {
    RedundantBlock block1;
    RedundantBlock block2;
    NodeId comm;      ///< c
    NodeId splitter;  ///< f_s
    /// (block-1 branch tail, block-2 branch head) pairs, ASIL-matched.
    std::vector<std::pair<NodeId, NodeId>> stitched;
};

/// Index of the branch whose nodes contain `n`; nullopt when absent.
std::optional<std::size_t> branch_of(const RedundantBlock& block, NodeId n) {
    for (std::size_t i = 0; i < block.branches.size(); ++i) {
        const auto& nodes = block.branches[i].nodes;
        if (std::find(nodes.begin(), nodes.end(), n) != nodes.end()) return i;
    }
    return std::nullopt;
}

/// Builds the full plan or explains why it cannot be built.
std::optional<ConnectPlan> plan_connect(const ArchitectureModel& m, NodeId merger,
                                        std::string* why) {
    auto fail = [&](std::string reason) -> std::optional<ConnectPlan> {
        if (why) *why = std::move(reason);
        return std::nullopt;
    };
    const AppGraph& g = m.app();
    if (!g.contains(merger) || g.node(merger).kind != NodeKind::Merger) {
        return fail("node is not a merger");
    }

    // Locate the n_m -> c -> f_s chain.
    if (g.out_degree(merger) != 1) return fail("merger must have exactly one output");
    const NodeId comm = g.successors(merger).front();
    if (g.node(comm).kind != NodeKind::Communication) {
        return fail("merger's successor is not a communication node");
    }
    // Condition 3: c touches nothing but n_m and f_s.
    if (g.in_degree(comm) != 1 || g.out_degree(comm) != 1) {
        return fail("middle communication node '" + g.node(comm).name +
                    "' is connected to external nodes");
    }
    const NodeId splitter = g.successors(comm).front();
    if (g.node(splitter).kind != NodeKind::Splitter) {
        return fail("communication node's successor is not a splitter");
    }
    if (g.in_degree(splitter) != 1) return fail("downstream splitter has external inputs");

    ConnectPlan plan;
    plan.comm = comm;
    plan.splitter = splitter;
    plan.block1 = find_block_at_merger(m, merger);
    if (!plan.block1.well_formed) return fail("upstream block is ill-formed");

    // The downstream block: the (unique) block having f_s among its splitters.
    std::optional<RedundantBlock> below;
    for (RedundantBlock& candidate : find_redundant_blocks(m)) {
        if (std::find(candidate.splitters.begin(), candidate.splitters.end(), splitter) !=
            candidate.splitters.end()) {
            if (below) return fail("downstream splitter feeds more than one block");
            below = std::move(candidate);
        }
    }
    if (!below) return fail("no redundant block found downstream of the splitter");
    if (!below->well_formed) return fail("downstream block is ill-formed");
    plan.block2 = std::move(*below);

    // Condition 2: same number of branches.
    if (plan.block1.branches.size() != plan.block2.branches.size()) {
        return fail("blocks have different branch counts");
    }
    // Condition 1: same block ASIL.
    if (block_asil(m, plan.block1) != block_asil(m, plan.block2)) {
        return fail("blocks have different ASIL values");
    }

    // Identify branch tails of block 1 (merger-side neighbours) and branch
    // heads of block 2 (splitter-side neighbours).
    struct Endpoint {
        NodeId node;
        std::size_t branch;
        Asil asil;
    };
    std::vector<Endpoint> tails;
    for (NodeId tail : g.predecessors(merger)) {
        const auto b = branch_of(plan.block1, tail);
        if (!b) return fail("merger input does not belong to any branch of its block");
        tails.push_back({tail, *b, branch_asil(m, plan.block1.branches[*b])});
    }
    std::vector<Endpoint> heads;
    for (NodeId head : g.successors(splitter)) {
        const auto b = branch_of(plan.block2, head);
        if (!b) return fail("splitter output does not belong to any branch of its block");
        heads.push_back({head, *b, branch_asil(m, plan.block2.branches[*b])});
    }
    if (tails.size() != heads.size()) {
        return fail("merger input count differs from splitter output count");
    }

    // Condition 4: ASIL-matched pairing (sort both sides by level).
    auto by_asil = [](const Endpoint& a, const Endpoint& b) {
        if (a.asil != b.asil) return asil_value(a.asil) < asil_value(b.asil);
        return a.node < b.node;
    };
    std::sort(tails.begin(), tails.end(), by_asil);
    std::sort(heads.begin(), heads.end(), by_asil);
    for (std::size_t i = 0; i < tails.size(); ++i) {
        if (tails[i].asil != heads[i].asil) {
            return fail("no branch-by-branch ASIL match between the two blocks");
        }
        plan.stitched.emplace_back(tails[i].node, heads[i].node);
    }
    return plan;
}

}  // namespace

bool can_connect(const ArchitectureModel& m, NodeId merger, std::string* why) {
    return plan_connect(m, merger, why).has_value();
}

ConnectResult connect(ArchitectureModel& m, NodeId merger) {
    static obs::Counter& ops = obs::Registry::global().counter("transform.connect.ops");
    ops.inc();
    const obs::ObsSpan span("connect", "transform");
    std::string why;
    auto plan = plan_connect(m, merger, &why);
    if (!plan) {
        throw TransformError("Connect(" +
                             (m.app().contains(merger) ? m.app().node(merger).name
                                                       : std::string("<unknown>")) +
                             "): " + why);
    }
    ConnectResult result;
    result.removed_merger = merger;
    result.removed_comm = plan->comm;
    result.removed_splitter = plan->splitter;
    result.stitched = plan->stitched;

    for (const auto& [tail, head] : plan->stitched) {
        m.connect_app(tail, head);
    }
    m.erase_app_node(merger, /*drop_dedicated_resources=*/true);
    m.erase_app_node(plan->comm, /*drop_dedicated_resources=*/true);
    m.erase_app_node(plan->splitter, /*drop_dedicated_resources=*/true);
    return result;
}

std::vector<NodeId> find_connectable(const ArchitectureModel& m) {
    std::vector<NodeId> out;
    for (NodeId n : m.app().node_ids()) {
        if (m.app().node(n).kind == NodeKind::Merger && can_connect(m, n)) out.push_back(n);
    }
    return out;
}

std::size_t connect_all(ArchitectureModel& m) {
    std::size_t merges = 0;
    for (;;) {
        const std::vector<NodeId> candidates = find_connectable(m);
        if (candidates.empty()) return merges;
        connect(m, candidates.front());
        ++merges;
    }
}

}  // namespace asilkit::transform

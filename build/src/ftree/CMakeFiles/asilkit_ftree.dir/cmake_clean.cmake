file(REMOVE_RECURSE
  "CMakeFiles/asilkit_ftree.dir/builder.cpp.o"
  "CMakeFiles/asilkit_ftree.dir/builder.cpp.o.d"
  "CMakeFiles/asilkit_ftree.dir/fault_tree.cpp.o"
  "CMakeFiles/asilkit_ftree.dir/fault_tree.cpp.o.d"
  "libasilkit_ftree.a"
  "libasilkit_ftree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_ftree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig6_connect.
# This may be replaced when dependencies are built.

// System failure-probability analysis (paper Section V).
//
// Pipeline: model -> fault tree (exact or Section-V-approximate) -> BDD ->
// exact top-event probability under a mission time.  The result carries
// the structural diagnostics the paper reports alongside the number:
// fault-tree size (the 87 -> 51 node reduction), path counts (the 2^n
// blow-up per decomposition), BDD size, and the soundness warnings raised
// during generation.
#pragma once

#include <string>
#include <vector>

#include "bdd/from_fault_tree.h"
#include "ftree/builder.h"
#include "model/architecture.h"
#include "model/failure_rates.h"

namespace asilkit::analysis {

struct ProbabilityOptions {
    /// Exposure over which p = 1 - exp(-lambda t) is evaluated.  At the
    /// default 1 h, probabilities are numerically ~= summed rates, which
    /// is how the paper quotes "failure probability (fph)".
    double mission_hours = 1.0;
    /// Use the Section V path-collapsing approximation.
    bool approximate = false;
    bool include_location_events = true;
    FailureRates rates{};
};

struct ProbabilityResult {
    double failure_probability = 0.0;
    ftree::FaultTreeStats ft_stats;
    std::size_t bdd_nodes = 0;        ///< interior nodes reachable from the root
    std::size_t bdd_total_nodes = 0;  ///< all nodes the manager allocated
    std::size_t variables = 0;        ///< distinct basic events in the BDD
    std::size_t modules = 0;          ///< independent modules (engine/modular path; 0 = monolithic)
    std::size_t approximated_blocks = 0;
    std::size_t cycles_cut = 0;
    std::vector<std::string> warnings;
};

/// Full pipeline on a model.
[[nodiscard]] ProbabilityResult analyze_failure_probability(const ArchitectureModel& m,
                                                            const ProbabilityOptions& options = {});

/// Exact BDD-based probability of an already-built fault tree.
[[nodiscard]] double fault_tree_probability(const ftree::FaultTree& ft, double mission_hours = 1.0);

/// The rare-event reading of the paper's ITE arithmetic evaluated
/// directly on the fault tree: OR = sum, AND = product of child
/// probabilities.  Exact only when no basic event is shared between
/// gates; provided as a cross-check and a baseline for the benches.
[[nodiscard]] double rare_event_probability(const ftree::FaultTree& ft, double mission_hours = 1.0);

/// Exact top-event probability via modular decomposition: detects the
/// independent modules of the tree (ftree::find_modules), compiles each
/// module's local region to its own BDD (nested modules appear as
/// pseudo-variables) and combines the results bottom-up.  Mathematically
/// equal to fault_tree_probability for every tree — including trees with
/// shared events, which stay inside one module — differing only by
/// floating-point rounding (different BDD shapes, same exact quantity).
/// This is the evaluation order the engine's per-module cache replays.
[[nodiscard]] double modular_probability(const ftree::FaultTree& ft, double mission_hours = 1.0);

}  // namespace asilkit::analysis

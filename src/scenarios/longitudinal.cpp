#include "scenarios/longitudinal.h"

#include "scenarios/builder.h"

namespace asilkit::scenarios {

ArchitectureModel ecotwin_longitudinal_control() {
    ScenarioBuilder b("ecotwin-longitudinal-control");
    ArchitectureModel& m = b.model();

    const LocationId front_bumper = b.loc("front_bumper");
    const LocationId cabin = b.loc("cabin");
    const LocationId chassis = b.loc("chassis");
    const LocationId engine_bay = b.loc("engine_bay", Environment{.temperature_zone = 2,
                                                                  .vibration_zone = 2,
                                                                  .emi_zone = 0,
                                                                  .water_exposure_zone = 0});
    const LocationId roof = b.loc("roof");

    const Asil D = Asil::D;

    b.set_fsr("FSR-LONG-SENSE");
    // ---- gap sensing: radar and V2V both observe the lead truck's
    // motion; fused redundantly (virtual splitter + merger), as in the
    // lateral application.
    const NodeId lead = b.sensor("lead_truck_motion", D, front_bumper);
    const NodeId vsplit = b.splitter("vsplit_lead", D, front_bumper);
    b.link(lead, vsplit);
    for (ResourceId r : m.mapped_resources(lead)) {
        m.resources().node(r).lambda_override = 0.0;
        m.resources().node(r).cost_override = 0.0;
    }
    for (ResourceId r : m.mapped_resources(vsplit)) {
        m.resources().node(r).lambda_override = 0.0;
        m.resources().node(r).cost_override = 0.0;
    }

    const NodeId gap_fusion = b.merger("gap_fusion", D, cabin);
    {
        const NodeId radar = b.sensor("gap_radar", D, front_bumper);
        const NodeId radar_link = b.comm("gap_radar_link", D, front_bumper);
        const NodeId radar_proc = b.func("gap_radar_proc", D, cabin);
        const NodeId radar_out = b.comm("gap_radar_out", D, cabin);
        b.chain({vsplit, radar, radar_link, radar_proc, radar_out, gap_fusion});

        const NodeId v2v = b.sensor("v2v_lead_state", D, roof);
        const NodeId v2v_link = b.comm("v2v_lead_link", D, cabin);
        const NodeId v2v_proc = b.func("v2v_lead_proc", D, cabin);
        const NodeId v2v_out = b.comm("v2v_lead_out", D, cabin);
        b.chain({vsplit, v2v, v2v_link, v2v_proc, v2v_out, gap_fusion});
    }

    b.set_fsr("FSR-LONG-EGO");
    // ---- ego speed (single channel).
    const NodeId wheel = b.sensor("wheel_speed", D, chassis);
    const NodeId wheel_link = b.comm("wheel_link", D, chassis);
    b.chain({wheel, wheel_link});

    b.set_fsr("FSR-LONG-01");
    // ---- decision chain: gap state -> CACC controller -> acceleration
    // request -> torque/brake arbitration.
    const NodeId gap_state = b.comm("gap_state", D, cabin);
    const NodeId cacc = b.func("cacc_controller", D, cabin);
    const NodeId accel_req = b.comm("accel_req", D, cabin);
    const NodeId arbiter = b.func("torque_brake_arbiter", D, cabin);
    b.chain({gap_fusion, gap_state, cacc, accel_req, arbiter});
    b.link(wheel_link, cacc);

    b.set_fsr("FSR-LONG-ACT");
    // ---- actuation: two actuators, each through its own network.
    const NodeId torque_cmd = b.comm("torque_cmd", D, engine_bay);
    const NodeId engine = b.actuator("engine_torque", D, engine_bay);
    b.chain({arbiter, torque_cmd, engine});
    const NodeId brake_cmd = b.comm("brake_cmd", D, chassis);
    const NodeId brake = b.actuator("brake", D, chassis);
    b.chain({arbiter, brake_cmd, brake});

    b.set_fsr("FSR-LONG-01");
    // ---- feedback loop: the applied acceleration changes the ego motion
    // that the CACC controller regulates (a DCG, as the paper notes
    // automotive applications are).
    const NodeId accel_feedback = b.comm("accel_feedback", D, cabin);
    b.link(arbiter, accel_feedback);
    b.link(accel_feedback, cacc);

    b.set_fsr("QM-HMI");
    // ---- mixed criticality: the driver display is QM and must not
    // inflate the safety analysis.
    const NodeId hmi_data = b.comm("hmi_data", Asil::QM, cabin);
    const NodeId display = b.actuator("driver_display", Asil::QM, cabin);
    b.link(gap_state, hmi_data);
    b.link(hmi_data, display);

    return b.take();
}

std::vector<std::string> longitudinal_decision_nodes() {
    return {"gap_state", "cacc_controller", "accel_req", "torque_brake_arbiter"};
}

}  // namespace asilkit::scenarios

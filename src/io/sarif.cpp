#include "io/sarif.h"

#include <algorithm>
#include <utility>

namespace asilkit::io {

SarifLog::SarifLog(std::string tool_name, std::string tool_version, std::string information_uri)
    : tool_name_(std::move(tool_name)),
      tool_version_(std::move(tool_version)),
      information_uri_(std::move(information_uri)) {}

void SarifLog::add_rule(const std::string& id, const std::string& short_description,
                        const std::string& default_level) {
    Json rule = Json::object();
    rule["id"] = id;
    Json text = Json::object();
    text["text"] = short_description;
    rule["shortDescription"] = std::move(text);
    Json config = Json::object();
    config["level"] = default_level;
    rule["defaultConfiguration"] = std::move(config);
    rules_.push_back(std::move(rule));
    rule_ids_.push_back(id);
}

void SarifLog::add_result(const std::string& rule_id, const std::string& level,
                          const std::string& message, const std::string& logical_name,
                          const std::string& logical_kind, const std::string& fixit) {
    Json result = Json::object();
    result["ruleId"] = rule_id;
    const auto it = std::find(rule_ids_.begin(), rule_ids_.end(), rule_id);
    if (it != rule_ids_.end()) {
        result["ruleIndex"] = static_cast<std::int64_t>(it - rule_ids_.begin());
    }
    result["level"] = level;
    Json text = Json::object();
    text["text"] = message;
    result["message"] = std::move(text);
    if (!logical_name.empty()) {
        Json logical = Json::object();
        logical["fullyQualifiedName"] = logical_name;
        logical["kind"] = logical_kind;
        Json location = Json::object();
        location["logicalLocations"] = JsonArray{std::move(logical)};
        result["locations"] = JsonArray{std::move(location)};
    }
    if (!fixit.empty()) {
        Json properties = Json::object();
        properties["fixit"] = fixit;
        result["properties"] = std::move(properties);
    }
    results_.push_back(std::move(result));
}

void SarifLog::add_result_at(const std::string& rule_id, const std::string& level,
                             const std::string& message, const std::string& uri, int line) {
    Json result = Json::object();
    result["ruleId"] = rule_id;
    const auto it = std::find(rule_ids_.begin(), rule_ids_.end(), rule_id);
    if (it != rule_ids_.end()) {
        result["ruleIndex"] = static_cast<std::int64_t>(it - rule_ids_.begin());
    }
    result["level"] = level;
    Json text = Json::object();
    text["text"] = message;
    result["message"] = std::move(text);
    if (!uri.empty()) {
        Json artifact = Json::object();
        artifact["uri"] = uri;
        Json physical = Json::object();
        physical["artifactLocation"] = std::move(artifact);
        if (line >= 1) {
            Json region = Json::object();
            region["startLine"] = static_cast<std::int64_t>(line);
            physical["region"] = std::move(region);
        }
        Json location = Json::object();
        location["physicalLocation"] = std::move(physical);
        result["locations"] = JsonArray{std::move(location)};
    }
    results_.push_back(std::move(result));
}

Json SarifLog::to_json() const {
    Json driver = Json::object();
    driver["name"] = tool_name_;
    if (!tool_version_.empty()) driver["version"] = tool_version_;
    if (!information_uri_.empty()) driver["informationUri"] = information_uri_;
    driver["rules"] = JsonArray(rules_.begin(), rules_.end());

    Json tool = Json::object();
    tool["driver"] = std::move(driver);

    Json run = Json::object();
    run["tool"] = std::move(tool);
    run["results"] = JsonArray(results_.begin(), results_.end());

    Json doc = Json::object();
    doc["$schema"] = kSarifSchemaUri;
    doc["version"] = "2.1.0";
    doc["runs"] = JsonArray{std::move(run)};
    return doc;
}

}  // namespace asilkit::io

// Fault-tree -> BDD compilation (paper Section V).
//
// Variable ordering follows the paper: a breadth-first, left-to-right
// traversal of the fault tree from the top event, assigning increasing
// variable indices to basic events in first-seen order "so that the base
// events that impact more directly the Top Level Event come first".
// Gates then become apply() chains: OR children are combined with
// BddOp::Or, AND children with BddOp::And — the "+" and "*" of the
// paper's ITE formulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/bdd.h"
#include "ftree/fault_tree.h"
#include "ftree/modules.h"

namespace asilkit::bdd {

/// Basic-event indices in the paper's top-down / left-to-right variable
/// order (restricted to events reachable from the top gate).
[[nodiscard]] std::vector<std::uint32_t> ft_variable_order(const ftree::FaultTree& ft);

/// A compiled fault tree: the manager owning the diagram, the root
/// function, and the var -> basic-event-index mapping.
struct CompiledFaultTree {
    BddManager manager;
    BddRef root = kFalse;
    /// event_of_var[v] = index of the basic event assigned to variable v.
    std::vector<std::uint32_t> event_of_var;

    /// Per-variable failure probabilities for a mission of `hours`,
    /// p = 1 - exp(-lambda * t), aligned with the manager's variables.
    [[nodiscard]] std::vector<double> variable_probabilities(const ftree::FaultTree& ft,
                                                             double hours) const;
};

/// Compiles with the paper's default ordering, or with an explicit order
/// (a permutation of reachable basic-event indices) for ordering studies.
[[nodiscard]] CompiledFaultTree compile_fault_tree(const ftree::FaultTree& ft);
[[nodiscard]] CompiledFaultTree compile_fault_tree(const ftree::FaultTree& ft,
                                                   const std::vector<std::uint32_t>& event_order);

/// p = 1 - exp(-lambda * hours); for lambda*t << 1 this is ~= lambda * t,
/// which is why the paper quotes probabilities numerically equal to rates
/// at t = 1 h.
[[nodiscard]] double basic_event_probability(double lambda, double hours) noexcept;

/// Result of evaluating one module of a ftree::ModuleDecomposition: the
/// module's local region compiled to its own (small) BDD with nested
/// modules as pseudo-variables, Shannon-evaluated with the child
/// modules' probabilities.  Exact: a module's basic events are disjoint
/// from the rest of the tree, so a nested module is an independent
/// boolean variable of the local region — even when it is referenced
/// several times, because the BDD keeps the repeated-variable
/// dependence that a naive sum/product combination would lose.
struct ModuleEvalResult {
    double probability = 0.0;
    std::size_t bdd_nodes = 0;        ///< interior nodes reachable from the local root
    std::size_t bdd_total_nodes = 0;  ///< all nodes the local manager allocated
    std::size_t variables = 0;        ///< real basic events in the local region
};

/// Evaluates module `module_index` of `dec` on `ft` (the tree `dec` was
/// detected on).  `child_probabilities` must align with
/// dec.modules[module_index].child_modules — the values previously
/// computed for the nested modules, children before parents.  The local
/// variable order follows the paper within the module: breadth-first,
/// left-to-right from the module root over basic events and
/// pseudo-variables in first-seen order, so the evaluation is a pure
/// function of the module's subtree (the cache-replay guarantee).
[[nodiscard]] ModuleEvalResult evaluate_module(const ftree::FaultTree& ft,
                                               const ftree::ModuleDecomposition& dec,
                                               std::size_t module_index,
                                               std::span<const double> child_probabilities,
                                               double mission_hours);

}  // namespace asilkit::bdd

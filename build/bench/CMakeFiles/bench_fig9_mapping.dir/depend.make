# Empty dependencies file for bench_fig9_mapping.
# This may be replaced when dependencies are built.

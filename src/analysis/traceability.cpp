#include "analysis/traceability.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <unordered_map>

#include "model/blocks.h"

namespace asilkit::analysis {

std::ostream& operator<<(std::ostream& os, const FsrStatus& status) {
    os << status.fsr << ": required " << to_long_string(status.required) << ", achieved "
       << to_long_string(status.achieved) << (status.satisfied ? " [satisfied]" : " [VIOLATED]")
       << " (" << status.nodes.size() << " nodes)";
    return os;
}

bool TraceabilityReport::all_satisfied() const noexcept {
    return std::all_of(requirements.begin(), requirements.end(),
                       [](const FsrStatus& s) { return s.satisfied; });
}

const FsrStatus* TraceabilityReport::find(const std::string& fsr) const noexcept {
    for (const FsrStatus& s : requirements) {
        if (s.fsr == fsr) return &s;
    }
    return nullptr;
}

TraceabilityReport trace_requirements(const ArchitectureModel& m) {
    // Credited level per node: block ASIL inside well-formed blocks
    // (branch nodes, splitters and mergers all credit the block), the
    // node's own effective ASIL (Eq. 3) otherwise.
    std::unordered_map<NodeId, Asil> credit;
    for (NodeId n : m.app().node_ids()) credit[n] = m.effective_asil(n);
    for (const RedundantBlock& block : find_redundant_blocks(m)) {
        if (!block.well_formed) continue;
        const Asil level = block_asil(m, block);
        auto credit_node = [&](NodeId n) {
            credit[n] = asil_max(credit[n], level);
        };
        credit_node(block.merger);
        for (NodeId s : block.splitters) credit_node(s);
        for (const Branch& b : block.branches) {
            for (NodeId n : b.nodes) credit_node(n);
        }
    }

    std::map<std::string, FsrStatus> by_fsr;
    TraceabilityReport report;
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        if (node.fsr.empty()) {
            report.untraced_nodes.push_back(node.name);
            continue;
        }
        FsrStatus& status = by_fsr[node.fsr];
        if (status.nodes.empty()) {
            status.fsr = node.fsr;
            status.required = node.asil.inherited;
            status.achieved = credit[n];
        } else {
            status.required = asil_max(status.required, node.asil.inherited);
            status.achieved = asil_min(status.achieved, credit[n]);
        }
        status.nodes.push_back(node.name);
    }
    for (auto& [fsr, status] : by_fsr) {
        for (NodeId n : m.app().node_ids()) {
            const AppNode& node = m.app().node(n);
            if (node.fsr == fsr && asil_value(credit[n]) < asil_value(status.required)) {
                status.under_implemented.push_back(node.name);
            }
        }
        status.satisfied = asil_value(status.achieved) >= asil_value(status.required);
        std::sort(status.nodes.begin(), status.nodes.end());
        report.requirements.push_back(std::move(status));
    }
    std::sort(report.untraced_nodes.begin(), report.untraced_nodes.end());
    return report;
}

}  // namespace asilkit::analysis

// Seeded synthetic model generator for scalability studies and
// randomized property tests.
//
// Generates layered sensor -> processing -> actuator DAGs whose size and
// fan-in/out are parameterized; every node sits on dedicated hardware.
// The generator is a pure function of its options (std::mt19937 with the
// given seed), so tests and benches are reproducible.
#pragma once

#include <cstdint>

#include "model/architecture.h"

namespace asilkit::scenarios {

struct SyntheticOptions {
    std::uint32_t seed = 1;
    std::size_t sensors = 3;
    std::size_t layers = 3;            ///< functional layers between sensors and actuators
    std::size_t width = 3;             ///< functional nodes per layer
    std::size_t actuators = 1;
    double extra_edge_probability = 0.2;  ///< chance of a second input per node
    Asil level = Asil::D;              ///< requirement level of every node
};

[[nodiscard]] ArchitectureModel synthetic_model(const SyntheticOptions& options = {});

}  // namespace asilkit::scenarios

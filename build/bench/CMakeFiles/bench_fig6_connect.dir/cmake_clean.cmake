file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_connect.dir/bench_fig6_connect.cpp.o"
  "CMakeFiles/bench_fig6_connect.dir/bench_fig6_connect.cpp.o.d"
  "bench_fig6_connect"
  "bench_fig6_connect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_connect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once
#include "core/base.h"
#include "engine/pool.h"
inline int core_util() { return core_base() + engine_pool(); }

# Empty dependencies file for asilkit_model.
# This may be replaced when dependencies are built.

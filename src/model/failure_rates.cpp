#include "model/failure_rates.h"

namespace asilkit {

FailureRates::FailureRates() {
    for (ResourceKind kind : kAllResourceKinds) {
        const bool dedicated = kind == ResourceKind::Splitter || kind == ResourceKind::Merger;
        double lambda = dedicated ? 1e-6 : 1e-5;
        for (Asil a : kAllAsilLevels) {
            rates_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(a)] = lambda;
            lambda /= 10.0;
        }
    }
}

double FailureRates::rate(ResourceKind kind, Asil asil) const noexcept {
    return rates_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(asil)];
}

void FailureRates::set_rate(ResourceKind kind, Asil asil, double lambda) noexcept {
    rates_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(asil)] = lambda;
}

double FailureRates::resource_rate(const Resource& r) const noexcept {
    if (r.lambda_override) return *r.lambda_override;
    return rate(r.kind, r.asil);
}

}  // namespace asilkit

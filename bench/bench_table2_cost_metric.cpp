// Table II: "Exponential Cost Metric 1" — unit cost per resource kind and
// ASIL — plus the alternative metrics used by the Fig. 1 curve families,
// and timings for whole-architecture cost evaluation.
#include "bench_util.h"

#include "cost/cost_analysis.h"
#include "scenarios/ecotwin.h"

using namespace asilkit;

namespace {

void print_metric(const cost::CostMetric& metric) {
    std::printf("  %-16s %-8s %-8s %-8s %-8s %-8s\n", metric.name().c_str(), "QM", "A", "B", "C",
                "D");
    const struct {
        const char* label;
        ResourceKind kind;
    } kinds[] = {
        {"Functional", ResourceKind::Functional}, {"Communication", ResourceKind::Communication},
        {"Sensor", ResourceKind::Sensor},         {"Actuator", ResourceKind::Actuator},
        {"Splitter", ResourceKind::Splitter},     {"Merger", ResourceKind::Merger},
    };
    for (const auto& k : kinds) {
        std::printf("  %-16s ", k.label);
        for (Asil a : kAllAsilLevels) std::printf("%-8.6g ", metric.cost(k.kind, a));
        std::printf("\n");
    }
}

void print_report() {
    bench::heading("Table II: Exponential Cost Metric 1");
    print_metric(cost::CostMetric::exponential_metric1());
    bench::heading("Alternative metric 2 (steeper exponential, factor 20)");
    print_metric(cost::CostMetric::exponential_metric2());
    bench::heading("Alternative metric 3 (linear)");
    print_metric(cost::CostMetric::linear_metric3());

    bench::heading("Sanity: EcoTwin initial architecture cost under each metric");
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    bench::row("metric 1", cost::total_cost(m, cost::CostMetric::exponential_metric1()));
    bench::row("metric 2", cost::total_cost(m, cost::CostMetric::exponential_metric2()));
    bench::row("metric 3", cost::total_cost(m, cost::CostMetric::linear_metric3()));
    bench::note("paper initial cost (its unpublished model, metric 1): 998800");
}

void BM_TotalCostEcotwin(benchmark::State& state) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const auto metric = cost::CostMetric::exponential_metric1();
    for (auto _ : state) {
        benchmark::DoNotOptimize(cost::total_cost(m, metric));
    }
}
BENCHMARK(BM_TotalCostEcotwin);

void BM_CostReportEcotwin(benchmark::State& state) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const auto metric = cost::CostMetric::exponential_metric1();
    for (auto _ : state) {
        benchmark::DoNotOptimize(cost::cost_report(m, metric));
    }
}
BENCHMARK(BM_CostReportEcotwin);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// Tiny CSV table writer (RFC 4180 quoting) for the benchmark harness:
// every figure regenerates its data series as a CSV next to the console
// output so it can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace asilkit::io {

class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> header);

    /// Row width must match the header; throws IoError otherwise.
    void add_row(std::vector<std::string> cells);

    /// Numeric convenience: formats with %.17g-style shortest round-trip.
    [[nodiscard]] static std::string number(double value);

    [[nodiscard]] std::string to_string() const;
    void save(const std::string& path) const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace asilkit::io

#include "transform/connect.h"

#include <gtest/gtest.h>

#include "analysis/probability.h"
#include "core/error.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/micro.h"
#include "transform/expand.h"
#include "transform/reduce.h"

namespace asilkit::transform {
namespace {

/// Expands both stages of the two-stage chain, producing the Fig. 6
/// configuration: block(n1) -> c_mid -> block(n2).
ArchitectureModel two_blocks(DecompositionStrategy strategy = DecompositionStrategy::BB) {
    ArchitectureModel m = scenarios::chain_two_stages();
    ExpandOptions options;
    options.strategy = strategy;
    expand(m, m.find_app_node("n1"), options);
    expand(m, m.find_app_node("n2"), options);
    return m;
}

NodeId merger_of_block1(const ArchitectureModel& m) { return m.find_app_node("merge_n1"); }

TEST(Connect, TwoExpandedStagesAreConnectable) {
    const ArchitectureModel m = two_blocks();
    std::string why;
    EXPECT_TRUE(can_connect(m, merger_of_block1(m), &why)) << why;
    EXPECT_EQ(find_connectable(m), (std::vector<NodeId>{merger_of_block1(m)}));
}

TEST(Connect, RemovesMergerCommSplitter) {
    ArchitectureModel m = two_blocks();
    const std::size_t nodes_before = m.app().node_count();
    const std::size_t resources_before = m.resources().node_count();
    const ConnectResult r = connect(m, merger_of_block1(m));
    EXPECT_EQ(m.app().node_count(), nodes_before - 3);
    EXPECT_EQ(m.resources().node_count(), resources_before - 3);
    EXPECT_FALSE(m.find_app_node("merge_n1").valid());
    EXPECT_FALSE(m.find_app_node("c_mid").valid());
    EXPECT_FALSE(m.find_app_node("split_n2").valid());
    EXPECT_EQ(r.stitched.size(), 2u);
}

TEST(Connect, StitchesBranchesByAsil) {
    ArchitectureModel m = two_blocks(DecompositionStrategy::AC);  // branches C(D) + A(D)
    connect(m, merger_of_block1(m));
    // After stitching, each n1 replica's chain must lead to the SAME-level
    // n2 replica: c_out_n1_x -> c_in_n2_y with matching levels.
    const NodeId n1_c = m.find_app_node("n1_1");  // level C replica of stage 1
    ASSERT_TRUE(n1_c.valid());
    EXPECT_EQ(m.app().node(n1_c).asil.level, Asil::C);
    // Walk forward to the stage-2 replica.
    NodeId cursor = n1_c;
    for (int hops = 0; hops < 4; ++hops) {
        const auto succ = m.app().successors(cursor);
        ASSERT_EQ(succ.size(), 1u);
        cursor = succ.front();
        if (m.app().node(cursor).name.rfind("n2_", 0) == 0) break;
    }
    EXPECT_EQ(m.app().node(cursor).asil.level, Asil::C)
        << "C branch of block 1 must continue into the C branch of block 2";
}

TEST(Connect, MergedBlockKeepsAsil) {
    ArchitectureModel m = two_blocks();
    connect(m, merger_of_block1(m));
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_TRUE(blocks.front().well_formed);
    EXPECT_EQ(block_asil(m, blocks.front()), Asil::D);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Connect, LowersFailureProbability) {
    // Paper Fig. 6: 5.49e-9 -> 4.26e-9 (removes three series resources).
    ArchitectureModel m = two_blocks();
    const double before = analysis::analyze_failure_probability(m).failure_probability;
    connect(m, merger_of_block1(m));
    const double after = analysis::analyze_failure_probability(m).failure_probability;
    EXPECT_LT(after, before);
    // Removed: merger (1e-10) + D comm (1e-9) + splitter (1e-10).
    EXPECT_NEAR(before - after, 1.2e-9, 2e-10);
}

TEST(Connect, RefusesNonMerger) {
    ArchitectureModel m = two_blocks();
    EXPECT_THROW((void)connect(m, m.find_app_node("sens")), TransformError);
    EXPECT_FALSE(can_connect(m, m.find_app_node("sens")));
}

TEST(Connect, RefusesWhenMiddleCommHasExternalReader) {
    ArchitectureModel m = two_blocks();
    // An external consumer of c_mid violates condition 3.
    const NodeId tap = m.add_node_with_dedicated_resource(
        {"diag_tap", NodeKind::Actuator, AsilTag{Asil::QM}, {}}, m.find_location("center"));
    m.connect_app(m.find_app_node("c_mid"), tap);
    std::string why;
    EXPECT_FALSE(can_connect(m, merger_of_block1(m), &why));
    EXPECT_NE(why.find("external"), std::string::npos);
    EXPECT_THROW((void)connect(m, merger_of_block1(m)), TransformError);
}

TEST(Connect, RefusesDifferentBlockAsil) {
    ArchitectureModel m = scenarios::chain_two_stages();
    // Stage 1 at D, stage 2 downgraded to C before expansion.
    const NodeId n2 = m.find_app_node("n2");
    m.app().node(n2).asil = AsilTag{Asil::C};
    m.resources().node(m.mapped_resources(n2).front()).asil = Asil::C;
    expand(m, m.find_app_node("n1"));
    expand(m, n2);
    std::string why;
    EXPECT_FALSE(can_connect(m, merger_of_block1(m), &why));
    EXPECT_NE(why.find("ASIL"), std::string::npos);
}

TEST(Connect, RefusesMismatchedBranchAsils) {
    // Same block ASIL (D) but BB branches {B,B} cannot stitch onto AC
    // branches {C,A}: condition 4.
    ArchitectureModel m = scenarios::chain_two_stages();
    ExpandOptions bb;
    bb.strategy = DecompositionStrategy::BB;
    expand(m, m.find_app_node("n1"), bb);
    ExpandOptions ac;
    ac.strategy = DecompositionStrategy::AC;
    expand(m, m.find_app_node("n2"), ac);
    std::string why;
    EXPECT_FALSE(can_connect(m, merger_of_block1(m), &why));
    EXPECT_NE(why.find("match"), std::string::npos);
}

TEST(Connect, RefusesLoneBlock) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    std::string why;
    EXPECT_FALSE(can_connect(m, r.mergers[0], &why));
}

TEST(Connect, ConnectAllMergesWholeChain) {
    ArchitectureModel m = scenarios::chain_n_stages(4);
    for (int i = 1; i <= 4; ++i) {
        expand(m, m.find_app_node("f" + std::to_string(i)));
    }
    // Adjacent expanded blocks leave c_post/c_pre residue only for
    // communication expansions; functional stages sit between original
    // comm nodes, so reduce first, then connect everything.
    reduce_all(m);
    const std::size_t merges = connect_all(m);
    EXPECT_EQ(merges, 3u);  // 4 blocks -> 1
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_TRUE(blocks.front().well_formed);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Connect, SingleFaultToleranceIsPreserved) {
    // Any single branch-resource failure must not fail the system, both
    // before and after Connect() (the transformation is single-fault
    // equivalent; only multi-fault behaviour degrades).
    ArchitectureModel m = two_blocks();
    auto survives_single_fault = [](const ArchitectureModel& model, const std::string& res) {
        ftree::FtBuildResult ft = ftree::build_fault_tree(model);
        // Setting lambda extremely high approximates "failed".
        ArchitectureModel copy = model;
        copy.resources().node(copy.find_resource(res)).lambda_override = 1e9;
        const double p = analysis::analyze_failure_probability(copy).failure_probability;
        return p < 0.5;
    };
    ASSERT_TRUE(survives_single_fault(m, "n1_1_hw"));
    connect(m, merger_of_block1(m));
    EXPECT_TRUE(survives_single_fault(m, "n1_1_hw"));
    EXPECT_TRUE(survives_single_fault(m, "n2_2_hw"));
}

TEST(Connect, ResultRecordsRemovedNodes) {
    ArchitectureModel m = two_blocks();
    const NodeId merger = merger_of_block1(m);
    const NodeId comm = m.find_app_node("c_mid");
    const NodeId splitter = m.find_app_node("split_n2");
    const ConnectResult r = connect(m, merger);
    EXPECT_EQ(r.removed_merger, merger);
    EXPECT_EQ(r.removed_comm, comm);
    EXPECT_EQ(r.removed_splitter, splitter);
}

}  // namespace
}  // namespace asilkit::transform

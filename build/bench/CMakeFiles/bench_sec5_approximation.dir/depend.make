# Empty dependencies file for bench_sec5_approximation.
# This may be replaced when dependencies are built.

# Empty dependencies file for asilkit_bdd.
# This may be replaced when dependencies are built.

// asilkit-archcheck: compile-time architecture conformance for src/.
//
// The codebase is layered (core -> model/graph -> ftree/cost -> bdd ->
// analysis -> lint/engine -> explore -> cli, with obs and io as side
// layers); the layering is what keeps the engine's concurrency model
// auditable — a lower layer can never call back up into code that might
// re-enter its locks.  This checker makes that architecture a build
// artifact instead of a convention: it parses the quoted #include graph
// of a source tree, maps every file to its layer (first path component),
// and verifies
//   * every cross-layer include edge is allowed by a declared layer DAG
//     (tools/archcheck/layers.json — direct deps plus their transitive
//     closure, so layering constrains direction, not minimality);
//   * the declared DAG itself is acyclic;
//   * every layer on disk is declared;
//   * the file-level include graph has no cycles.
// Findings are emitted as text and as SARIF 2.1.0 (io::SarifLog with
// physical artifact locations), so CI merges them with clang-tidy and
// thread-safety diagnostics into one static-analysis artifact.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "io/json.h"

namespace asilkit::archcheck {

/// Stable rule ids (SARIF ruleId values).
inline constexpr const char* kRuleLayerViolation = "arch.layer-violation";
inline constexpr const char* kRuleCycle = "arch.cycle";
inline constexpr const char* kRuleUndeclaredLayer = "arch.undeclared-layer";
inline constexpr const char* kRuleSpecCycle = "arch.spec-cycle";

/// The declared layer DAG: layer -> directly allowed dependency layers.
struct LayerSpec {
    std::map<std::string, std::vector<std::string>> allowed;

    /// Layers reachable from `layer` through declared edges (excluding
    /// `layer` itself).  Empty for undeclared layers.
    [[nodiscard]] std::set<std::string> closure(const std::string& layer) const;

    [[nodiscard]] bool declares(const std::string& layer) const {
        return allowed.find(layer) != allowed.end();
    }
};

/// Parses the {"layers": {name: [deps...]}} document.  Keys beginning
/// with '_' at the top level are ignored (comment convention).  Throws
/// asilkit::IoError on malformed input.
[[nodiscard]] LayerSpec parse_layers(const io::Json& doc);

/// Convenience: load + parse a layers.json file.
[[nodiscard]] LayerSpec load_layers(const std::string& path);

struct Finding {
    std::string rule;     ///< one of the kRule* ids
    std::string level;    ///< SARIF level: "error" or "warning"
    std::string message;
    std::string file;     ///< path relative to the scanned root ('/' separators)
    int line = 0;         ///< 1-based include line; 0 = whole file
};

struct Report {
    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
    std::size_t include_edges = 0;
    std::size_t layers_seen = 0;

    [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Scans `root` recursively for C++ sources/headers (.h .hpp .cpp .cc),
/// builds the quoted-include graph (includes resolved against `root`
/// first, then against the including file's directory; unresolvable
/// quoted includes are ignored), and checks it against `spec`.
/// Findings are deterministic: sorted by (file, line, rule).
[[nodiscard]] Report analyze_tree(const std::string& root, const LayerSpec& spec);

/// Human-readable rendering, one finding per line plus a summary.
[[nodiscard]] std::string to_text(const Report& report);

/// SARIF 2.1.0 document with one run for the asilkit-archcheck tool;
/// findings carry physical artifact locations relative to the scanned
/// root.
[[nodiscard]] io::Json to_sarif(const Report& report);

}  // namespace asilkit::archcheck

# Empty dependencies file for test_mapping_search.
# This may be replaced when dependencies are built.

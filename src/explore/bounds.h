// Admissible lower bounds for resource-merge candidates.
//
// search_mapping evaluates every candidate merge on the real objective —
// exact BDD failure probability, then architecture cost.  Most candidates
// provably cannot beat the incumbent, and proving that is far cheaper
// than a fault-tree + BDD evaluation:
//
//   * cost: a merge removes one resource and raises the survivor to
//     asil_max of the pair.  The post-merge total under the metric is a
//     closed-form delta on the pre-merge total
//     (cost::merged_total_cost) — exact, hence admissible.
//
//   * probability: from the CURRENT model's minimal cut sets, every cut
//     is conservatively rewritten into a cut of the merged model
//     (substitute the removed resource's event by the survivor's
//     re-priced event; when the merge relocates nodes, widen the cut by
//     the survivor's location events).  The union of the rewritten cuts
//     under-approximates the merged top event, and the second-order
//     Bonferroni bound (analysis::CutSetLowerBound) under-approximates
//     that union — two sound inequalities stacked, so
//     prob_lb <= exact probability always (docs/explore.md spells out
//     the monotonicity argument).
//
// The context is built once per SEARCH (one fault tree + one cut-set
// enumeration + the factorised Bonferroni precomputation), queried per
// candidate in time proportional to the affected cuts and their
// event-sharing neighbours, and carried across iterations by commit():
// the accepted merge's conservative rewrite becomes the new base
// family, skipping the tree build and the MOCUS enumeration that
// dominate construction.  Cut-set enumerations are additionally shared
// process-wide between contexts whose fault trees have identical shape
// (a trade-off sweep starts many searches from one seed model).  When the model is out of reach for cut-set
// enumeration (MOCUS overflow, degenerate tree, or an oversized cut
// family), usable() is false and the caller must not prune — bounds
// never sacrifice exactness, only work.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/cutsets.h"
#include "analysis/probability.h"
#include "cost/cost_metric.h"
#include "model/architecture.h"

namespace asilkit::explore {

class MergeBoundContext {
public:
    struct Bounds {
        double probability_lb = 0.0;
        double cost_lb = 0.0;
    };

    /// `current_total_cost` is the pre-merge total under `metric`
    /// (default CostOptions), as already computed by the search.  `m`
    /// must outlive the context and is read through on every query, so
    /// the same context can follow a search walk via commit().
    MergeBoundContext(const ArchitectureModel& m, const cost::CostMetric& metric,
                      const analysis::ProbabilityOptions& prob_options, double current_total_cost);

    /// Advances the context across an ACCEPTED merge without rebuilding
    /// the fault tree or re-enumerating cut sets: the same conservative
    /// cut rewrite that bounds() prices is materialized as the new base
    /// family (rewritten cuts are cuts of the merged top event, so every
    /// later bound stays admissible — see docs/explore.md), and the
    /// survivor's event is re-priced for its raised ASIL.  Must be
    /// called BEFORE the merge is applied to the model; `new_total_cost`
    /// is the merged model's exact total under the metric (the search's
    /// next incumbent).  O(k^2) against the O(tree + MOCUS + k^2) of a
    /// fresh context.
    void commit(ResourceId into, ResourceId from, double new_total_cost);

    /// False when no sound probability bound could be established for
    /// this model; bounds() then returns probability_lb = 0 (which never
    /// prunes).  The cost bound is always available.
    [[nodiscard]] bool usable() const noexcept { return lb_.has_value(); }

    /// Admissible lower bounds for merging `from` into `into`.  Both
    /// must be used resources of the model the context was built from.
    [[nodiscard]] Bounds bounds(ResourceId into, ResourceId from) const;

    /// Cut sets backing the probability bound (empty when unusable).
    [[nodiscard]] std::size_t cut_count() const noexcept {
        return lb_ ? lb_->cut_count() : 0u;
    }

private:
    struct ResourceEvents {
        std::optional<std::uint32_t> event;     ///< "res:<name>" index, if in the tree
        std::vector<std::uint32_t> loc_events;  ///< sorted "loc:<name>" indices present
        std::vector<LocationId> locations;      ///< sorted, straight from MapH
    };
    [[nodiscard]] const ResourceEvents& events_of(ResourceId r) const;
    [[nodiscard]] analysis::CutSetLowerBound::Substitution substitution_for(
        ResourceId into, ResourceId from, const ResourceEvents& ea, const ResourceEvents& eb,
        bool same_locations) const;

    const ArchitectureModel& model_;
    const cost::CostMetric& metric_;
    analysis::ProbabilityOptions prob_options_;
    double current_total_cost_;
    bool location_events_ = true;
    bool events_ok_ = false;  ///< resource_events_ populated (tree built)
    std::optional<analysis::CutSetLowerBound> lb_;
    std::vector<double> event_probs_;  ///< current per-event pricing for lb_
    std::unordered_map<ResourceId, ResourceEvents> resource_events_;
};

}  // namespace asilkit::explore

// The three-layer architecture model (paper Section IV).
//
//   G = (N, E)   application graph   — what the vehicle does
//   H = (R, L)   resource graph      — the EE hardware implementing it
//   F = (P, C)   physical graph      — where the hardware sits
//
// plus the two mappings
//
//   MapG : N -> P(R)   which resources execute/carry each application node
//   MapH : R -> P(P)   which locations host each resource
//
// ArchitectureModel owns all five and keeps them consistent: erasing an
// application node drops its MapG entries; erasing a resource drops its
// MapH entries and its appearances in MapG.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/asil.h"
#include "core/ids.h"
#include "graph/digraph.h"
#include "model/location.h"
#include "model/node.h"
#include "model/resource.h"

namespace asilkit {

using AppGraph = graph::Digraph<AppNode, Channel, NodeId, ChannelId>;
using ResourceGraph = graph::Digraph<Resource, ResourceLink, ResourceId, LinkId>;
using PhysicalGraph = graph::Digraph<Location, PhysicalConnection, LocationId, ConnectionId>;

class ArchitectureModel {
public:
    ArchitectureModel() = default;
    explicit ArchitectureModel(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    // ---- layer access ----------------------------------------------------
    [[nodiscard]] AppGraph& app() noexcept { return app_; }
    [[nodiscard]] const AppGraph& app() const noexcept { return app_; }
    [[nodiscard]] ResourceGraph& resources() noexcept { return res_; }
    [[nodiscard]] const ResourceGraph& resources() const noexcept { return res_; }
    [[nodiscard]] PhysicalGraph& physical() noexcept { return phy_; }
    [[nodiscard]] const PhysicalGraph& physical() const noexcept { return phy_; }

    // ---- construction helpers ---------------------------------------------
    NodeId add_app_node(AppNode node) { return app_.add_node(std::move(node)); }
    ResourceId add_resource(Resource r) { return res_.add_node(std::move(r)); }
    LocationId add_location(Location loc) { return phy_.add_node(std::move(loc)); }
    ChannelId connect_app(NodeId from, NodeId to, Channel c = {}) {
        return app_.add_edge(from, to, std::move(c));
    }

    /// MapG: assigns a resource to an application node.  Throws ModelError
    /// on incompatible kinds (a sensor node on an ECU, ...).
    void map_node(NodeId n, ResourceId r);

    /// Removes one MapG association (no-op if absent).
    void unmap_node(NodeId n, ResourceId r);

    /// Replaces the full MapG entry of `n`.
    void remap_node(NodeId n, const std::vector<ResourceId>& rs);

    /// MapH: places a resource at a physical location.
    void place_resource(ResourceId r, LocationId p);

    /// Convenience: adds an application node together with a dedicated
    /// resource of the default kind and the same ASIL, mapped 1:1 and
    /// placed at `loc` (if valid).  Returns the new node id.  This is the
    /// "one new resource per new application node" policy the paper uses
    /// to evaluate transformations before mapping optimisation.
    NodeId add_node_with_dedicated_resource(AppNode node, LocationId loc = LocationId{});

    // ---- mapping queries ---------------------------------------------------
    [[nodiscard]] const std::vector<ResourceId>& mapped_resources(NodeId n) const;
    [[nodiscard]] const std::vector<LocationId>& resource_locations(ResourceId r) const;
    /// Application nodes mapped onto `r` (linear scan; fine at model scale).
    [[nodiscard]] std::vector<NodeId> nodes_on_resource(ResourceId r) const;
    /// Resources with at least one mapped application node.
    [[nodiscard]] std::vector<ResourceId> used_resources() const;
    /// Physical locations of an application node (union over its resources).
    [[nodiscard]] std::vector<LocationId> node_locations(NodeId n) const;

    // ---- derived quantities -------------------------------------------------
    /// Effective ASIL of an application node (paper Eq. 3):
    /// min(requirement level, min over mapped resources' readiness).
    /// A node with no mapped resource has no implementation: QM.
    [[nodiscard]] Asil effective_asil(NodeId n) const;

    /// Table-I failure rate of a resource honouring lambda_override.
    [[nodiscard]] double resource_lambda(ResourceId r) const;

    // ---- destructive edits --------------------------------------------------
    /// Erases an application node; when `drop_dedicated_resources` is set,
    /// resources that were mapped *only* by this node are erased as well
    /// (with their MapH entries) — transformations such as Connect() and
    /// Reduce() shrink the hardware architecture this way.
    void erase_app_node(NodeId n, bool drop_dedicated_resources = false);

    void erase_resource(ResourceId r);

    // ---- lookup by name (test/scenario convenience) -------------------------
    [[nodiscard]] NodeId find_app_node(std::string_view name) const;
    [[nodiscard]] ResourceId find_resource(std::string_view name) const;
    [[nodiscard]] LocationId find_location(std::string_view name) const;

private:
    std::string name_;
    AppGraph app_;
    ResourceGraph res_;
    PhysicalGraph phy_;
    std::unordered_map<NodeId, std::vector<ResourceId>> map_g_;
    std::unordered_map<ResourceId, std::vector<LocationId>> map_h_;
    std::vector<ResourceId> empty_resources_;
    std::vector<LocationId> empty_locations_;
};

}  // namespace asilkit

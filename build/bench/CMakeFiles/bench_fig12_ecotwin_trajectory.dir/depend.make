# Empty dependencies file for bench_fig12_ecotwin_trajectory.
# This may be replaced when dependencies are built.

#include <gtest/gtest.h>

#include "analysis/probability.h"
#include "ftree/builder.h"
#include "graph/algorithms.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/builder.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/longitudinal.h"
#include "scenarios/micro.h"
#include "scenarios/synthetic.h"

namespace asilkit::scenarios {
namespace {

TEST(Builder, LocIsIdempotentByName) {
    ScenarioBuilder b("x");
    const LocationId l1 = b.loc("front");
    const LocationId l2 = b.loc("front");
    EXPECT_EQ(l1, l2);
    EXPECT_EQ(b.model().physical().node_count(), 1u);
}

TEST(Builder, ChainLinksConsecutive) {
    ScenarioBuilder b("x");
    const LocationId loc = b.loc("zone");
    const NodeId s = b.sensor("s", Asil::B, loc);
    const NodeId c = b.comm("c", Asil::B, loc);
    const NodeId a = b.actuator("a", Asil::B, loc);
    b.chain({s, c, a});
    EXPECT_EQ(b.model().app().edge_count(), 2u);
    EXPECT_EQ(b.model().app().successors(s), (std::vector<NodeId>{c}));
}

TEST(Builder, EveryFactoryMakesMatchingKind) {
    ScenarioBuilder b("x");
    const LocationId loc = b.loc("zone");
    EXPECT_EQ(b.model().app().node(b.sensor("s", Asil::A, loc)).kind, NodeKind::Sensor);
    EXPECT_EQ(b.model().app().node(b.actuator("a", Asil::A, loc)).kind, NodeKind::Actuator);
    EXPECT_EQ(b.model().app().node(b.func("f", Asil::A, loc)).kind, NodeKind::Functional);
    EXPECT_EQ(b.model().app().node(b.comm("c", Asil::A, loc)).kind, NodeKind::Communication);
    EXPECT_EQ(b.model().app().node(b.splitter("sp", Asil::A, loc)).kind, NodeKind::Splitter);
    EXPECT_EQ(b.model().app().node(b.merger("m", Asil::A, loc)).kind, NodeKind::Merger);
}

TEST(Micro, AllChainsValidate) {
    EXPECT_EQ(validate(chain_1in_1out()).error_count(), 0u);
    EXPECT_EQ(validate(chain_1in_2out()).error_count(), 0u);
    EXPECT_EQ(validate(chain_3in_3out()).error_count(), 0u);
    EXPECT_EQ(validate(chain_two_stages()).error_count(), 0u);
    EXPECT_EQ(validate(chain_n_stages(6)).error_count(), 0u);
}

TEST(Micro, ExpectedShapes) {
    EXPECT_EQ(chain_1in_1out().app().node_count(), 5u);
    EXPECT_EQ(chain_1in_2out().app().node_count(), 7u);
    const ArchitectureModel wide = chain_3in_3out();
    const NodeId n = wide.find_app_node("n");
    EXPECT_EQ(wide.app().in_degree(n), 3u);
    EXPECT_EQ(wide.app().out_degree(n), 3u);
    const ArchitectureModel stages = chain_n_stages(5);
    for (int i = 1; i <= 5; ++i) {
        EXPECT_TRUE(stages.find_app_node("f" + std::to_string(i)).valid());
    }
}

TEST(Fig3, ValidatesAndHasPaperStructure) {
    const ArchitectureModel m = fig3_camera_gps_fusion();
    EXPECT_EQ(validate(m).error_count(), 0u);
    EXPECT_EQ(m.app().node_count(), 17u);
    // Deliberate resource sharing: both splitters on switch1.
    const auto sw1_nodes = m.nodes_on_resource(m.find_resource("switch1"));
    EXPECT_EQ(sw1_nodes.size(), 2u);
    // gps_coord rides CAN + gateway + eth2.
    EXPECT_EQ(m.mapped_resources(m.find_app_node("gps_coord")).size(), 3u);
}

TEST(Fig3, SharedEcuVariantDiffersOnlyInMapping) {
    const ArchitectureModel good = fig3_camera_gps_fusion();
    const ArchitectureModel bad = fig3_with_shared_ecu_ccf();
    EXPECT_EQ(good.app().node_count(), bad.app().node_count());
    const auto bad_dfus2 = bad.mapped_resources(bad.find_app_node("dfus_2"));
    ASSERT_EQ(bad_dfus2.size(), 1u);
    EXPECT_EQ(bad.resources().node(bad_dfus2.front()).name, "ecu1");
}

TEST(Fig3, FailureProbabilityNearPaperValue) {
    // Paper: 2.04180e-7 fph.  Our reconstruction: same order, dominated by
    // the two ASIL B sensors (2e-7).
    const double p =
        analysis::analyze_failure_probability(fig3_camera_gps_fusion()).failure_probability;
    EXPECT_NEAR(p, 2.04e-7, 0.15e-7);
}

TEST(Ecotwin, ValidatesClean) {
    const ArchitectureModel m = ecotwin_lateral_control();
    const ValidationReport report = validate(m);
    EXPECT_EQ(report.error_count(), 0u) << (report.issues.empty() ? "" : report.issues.front().message);
    EXPECT_EQ(report.warning_count(), 0u);
}

TEST(Ecotwin, AllAsilDInitially) {
    const ArchitectureModel m = ecotwin_lateral_control();
    for (NodeId n : m.app().node_ids()) {
        EXPECT_EQ(m.app().node(n).asil.level, Asil::D) << m.app().node(n).name;
        EXPECT_FALSE(m.app().node(n).asil.is_decomposed());
    }
    for (ResourceId r : m.resources().node_ids()) {
        EXPECT_EQ(m.resources().node(r).asil, Asil::D);
    }
}

TEST(Ecotwin, SensingIsFusedRedundantly) {
    const ArchitectureModel m = ecotwin_lateral_control();
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 2u);  // object fusion + ego fusion
    for (const auto& block : blocks) {
        EXPECT_TRUE(block.well_formed);
    }
    const auto object_block = find_block_at_merger(m, m.find_app_node("object_fusion"));
    EXPECT_EQ(object_block.branches.size(), 3u);  // camera, radar, lidar
}

TEST(Ecotwin, VirtualElementsAreFreeAndPerfect) {
    const ArchitectureModel m = ecotwin_lateral_control();
    for (const char* name : {"observed_scene_hw", "vsplit_scene_hw", "vehicle_motion_hw",
                             "vsplit_ego_hw"}) {
        const ResourceId r = m.find_resource(name);
        ASSERT_TRUE(r.valid()) << name;
        EXPECT_EQ(m.resources().node(r).lambda_override, 0.0);
        EXPECT_EQ(m.resources().node(r).cost_override, 0.0);
    }
}

TEST(Ecotwin, DecisionNodesExistAndAreExpandable) {
    const ArchitectureModel m = ecotwin_lateral_control();
    for (const std::string& name : ecotwin_decision_nodes()) {
        const NodeId n = m.find_app_node(name);
        ASSERT_TRUE(n.valid()) << name;
        const NodeKind kind = m.app().node(n).kind;
        EXPECT_TRUE(kind == NodeKind::Functional || kind == NodeKind::Communication) << name;
        EXPECT_GE(m.app().in_degree(n), 1u) << name;
        EXPECT_GE(m.app().out_degree(n), 1u) << name;
    }
}

TEST(Ecotwin, SensorFailureIsToleratedButDecisionChainIsNot) {
    // The fused sensing side survives a camera failure; the single-channel
    // decision chain is a series of single points of failure — the reason
    // the paper's experiments decompose exactly those nodes.
    ArchitectureModel camera_dead = ecotwin_lateral_control();
    camera_dead.resources().node(camera_dead.find_resource("camera_hw")).lambda_override = 1e9;
    EXPECT_LT(analysis::analyze_failure_probability(camera_dead).failure_probability, 0.5);

    ArchitectureModel wm_dead = ecotwin_lateral_control();
    wm_dead.resources().node(wm_dead.find_resource("world_model_hw")).lambda_override = 1e9;
    EXPECT_GT(analysis::analyze_failure_probability(wm_dead).failure_probability, 0.5);
}

TEST(Synthetic, DeterministicForSeed) {
    const ArchitectureModel a = synthetic_model({.seed = 5});
    const ArchitectureModel b = synthetic_model({.seed = 5});
    EXPECT_EQ(a.app().node_count(), b.app().node_count());
    EXPECT_EQ(a.app().edge_count(), b.app().edge_count());
    // Same-seed models place nodes at the same zones.
    for (NodeId n : a.app().node_ids()) {
        EXPECT_EQ(a.node_locations(n), b.node_locations(n));
    }
}

TEST(Synthetic, SizeScalesWithOptions) {
    SyntheticOptions small;
    small.layers = 2;
    small.width = 2;
    SyntheticOptions large;
    large.layers = 6;
    large.width = 5;
    EXPECT_LT(synthetic_model(small).app().node_count(),
              synthetic_model(large).app().node_count());
}

TEST(Synthetic, ValidatesAndIsAnalyzable) {
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
        SyntheticOptions options;
        options.seed = seed;
        const ArchitectureModel m = synthetic_model(options);
        EXPECT_EQ(validate(m).error_count(), 0u) << "seed " << seed;
        EXPECT_FALSE(graph::has_cycle(m.app()));
        const double p = analysis::analyze_failure_probability(m).failure_probability;
        EXPECT_GT(p, 0.0);
        EXPECT_LT(p, 1e-6);
    }
}


TEST(SyntheticTree, DeterministicAndExactlySized) {
    const SyntheticTreeOptions options{.seed = 7, .events = 40, .gates = 25};
    const ftree::FaultTree a = synthetic_fault_tree(options);
    const ftree::FaultTree b = synthetic_fault_tree(options);
    EXPECT_EQ(a.basic_events().size(), 40u);
    EXPECT_EQ(a.gates().size(), 26u);  // +1 top gate
    ASSERT_TRUE(a.has_top());
    ASSERT_EQ(a.basic_events().size(), b.basic_events().size());
    for (std::size_t e = 0; e < a.basic_events().size(); ++e) {
        EXPECT_EQ(a.basic_events()[e].lambda, b.basic_events()[e].lambda);
    }
    EXPECT_EQ(analysis::fault_tree_probability(a), analysis::fault_tree_probability(b));
}

TEST(SyntheticTree, ScalesToLargeTreesQuickly) {
    SyntheticTreeOptions options;
    options.events = 60000;
    options.gates = 40000;
    const ftree::FaultTree ft = synthetic_fault_tree(options);
    EXPECT_EQ(ft.basic_events().size() + ft.gates().size(), 100001u);
    // Every generated node reaches the top: nothing dangles.
    EXPECT_TRUE(ft.has_top());
}

TEST(SyntheticTree, ProbabilityIsNonTrivial) {
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
        SyntheticTreeOptions options;
        options.seed = seed;
        const double p = analysis::fault_tree_probability(synthetic_fault_tree(options));
        EXPECT_GT(p, 0.0) << "seed " << seed;
        EXPECT_LT(p, 1.0) << "seed " << seed;
    }
}

TEST(Longitudinal, ValidatesClean) {
    const ArchitectureModel m = ecotwin_longitudinal_control();
    const ValidationReport report = validate(m);
    EXPECT_EQ(report.error_count(), 0u)
        << (report.issues.empty() ? "" : report.issues.front().message);
}

TEST(Longitudinal, HasControlLoopCycle) {
    // accel_feedback closes the CACC loop: the application graph is a DCG.
    const ArchitectureModel m = ecotwin_longitudinal_control();
    EXPECT_TRUE(graph::has_cycle(m.app()));
    const auto p = analysis::analyze_failure_probability(m);
    EXPECT_EQ(p.cycles_cut, 1u);
}

TEST(Longitudinal, QmDisplayExcludedFromTopEvent) {
    const ArchitectureModel m = ecotwin_longitudinal_control();
    // Default: the QM driver display is not part of the safety top event,
    // so its 1e-5-class hardware must not dominate.
    const double p = analysis::analyze_failure_probability(m).failure_probability;
    EXPECT_LT(p, 1e-6);
    // Opting in pulls the QM chain into the top event.
    analysis::ProbabilityOptions all;
    all.include_location_events = true;
    ftree::FtBuildOptions build_options;
    build_options.include_qm_actuators = true;
    const auto ft = ftree::build_fault_tree(m, build_options);
    const double p_all = analysis::fault_tree_probability(ft.tree);
    EXPECT_GT(p_all, 1e-5);
}

TEST(Longitudinal, TwoSafetyActuatorsShareTopEvent) {
    const ArchitectureModel m = ecotwin_longitudinal_control();
    const auto ft = ftree::build_fault_tree(m);
    const ftree::Gate& top = ft.tree.gate(ft.tree.top());
    EXPECT_EQ(top.name, "system_failure");
    EXPECT_EQ(top.children.size(), 2u);  // engine torque + brake
}

TEST(Longitudinal, DecisionNodesAreExpandable) {
    const ArchitectureModel m = ecotwin_longitudinal_control();
    for (const std::string& name : longitudinal_decision_nodes()) {
        const NodeId n = m.find_app_node(name);
        ASSERT_TRUE(n.valid()) << name;
        EXPECT_GE(m.app().out_degree(n), 1u);
    }
}

TEST(Longitudinal, GapSensingToleratesRadarLoss) {
    ArchitectureModel m = ecotwin_longitudinal_control();
    m.resources().node(m.find_resource("gap_radar_hw")).lambda_override = 1e9;
    EXPECT_LT(analysis::analyze_failure_probability(m).failure_probability, 0.5);
}

TEST(Longitudinal, EngineBayEnvironmentIsHarsh) {
    const ArchitectureModel m = ecotwin_longitudinal_control();
    const Location& bay = m.physical().node(m.find_location("engine_bay"));
    EXPECT_GT(bay.env.temperature_zone, 0);
    EXPECT_GT(bay.env.vibration_zone, 0);
}

}  // namespace
}  // namespace asilkit::scenarios

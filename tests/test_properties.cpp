// Cross-module property tests on randomized inputs (seeded, deterministic):
//   * model-derived fault trees evaluate exactly (BDD == brute force),
//   * JSON round trips preserve analysis results on synthetic models,
//   * pure redundancy (free management hardware) never hurts,
//   * the Section V approximation never overestimates and stays tight,
//   * the malformed-input surface of the JSON parser never crashes.
#include <gtest/gtest.h>

#include <random>

#include "analysis/probability.h"
#include "bdd/from_fault_tree.h"
#include "ftree/builder.h"
#include "helpers.h"
#include "io/model_json.h"
#include "model/validation.h"
#include "scenarios/synthetic.h"
#include "transform/expand.h"

namespace asilkit {
namespace {

scenarios::SyntheticOptions small_options(std::uint32_t seed) {
    scenarios::SyntheticOptions options;
    options.seed = seed;
    options.sensors = 2;
    options.layers = 2;
    options.width = 2;
    return options;
}

class ModelProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ModelProperty, ModelFaultTreesEvaluateExactly) {
    // Fault trees generated from real models have DAG sharing patterns
    // (shared locations, shared buses) that random trees do not; check
    // the BDD against brute force on those too.
    ArchitectureModel m = scenarios::synthetic_model(small_options(GetParam()));
    const ftree::FtBuildResult ft = ftree::build_fault_tree(m);
    if (ft.tree.basic_events().size() > 20) GTEST_SKIP() << "too many events for brute force";
    // Raise rates so brute-force sums are numerically meaningful.
    ftree::FaultTree scaled;
    // Rebuild with scaled lambdas via a rate table instead.
    ftree::FtBuildOptions options;
    for (ResourceKind kind : kAllResourceKinds) {
        for (Asil a : kAllAsilLevels) {
            options.rates.set_rate(kind, a, 0.05 + 0.01 * asil_value(a));
        }
    }
    options.rates.set_location_rate(0.02);
    const ftree::FtBuildResult hot = ftree::build_fault_tree(m, options);
    const double exact = analysis::fault_tree_probability(hot.tree);
    const double brute = testing::brute_force_probability(hot.tree);
    EXPECT_NEAR(exact, brute, 1e-9) << "seed " << GetParam();
}

TEST_P(ModelProperty, JsonRoundTripPreservesAnalysis) {
    const ArchitectureModel m = scenarios::synthetic_model(small_options(GetParam()));
    const ArchitectureModel reloaded = io::model_from_json(io::to_json(m));
    EXPECT_DOUBLE_EQ(analysis::analyze_failure_probability(m).failure_probability,
                     analysis::analyze_failure_probability(reloaded).failure_probability)
        << "seed " << GetParam();
    EXPECT_EQ(validate(m).error_count(), validate(reloaded).error_count());
    // Double round trip is byte-stable (canonical key order).
    EXPECT_EQ(io::to_json(reloaded).dump(), io::to_json(io::model_from_json(io::to_json(m))).dump());
}

TEST_P(ModelProperty, FreeManagementMakesFunctionalExpansionAlwaysBeneficial) {
    // With zero-rate splitters/mergers and zero-rate locations, pure
    // 2-way redundancy of a FUNCTIONAL node can only remove probability
    // mass: P(after) <= P(before).  (Communication expansion is excluded:
    // it inserts c_pre/c_post nodes at the original level, which is real
    // series overhead, not management.)
    const std::uint32_t seed = GetParam();
    ArchitectureModel base = scenarios::synthetic_model(small_options(seed));
    analysis::ProbabilityOptions options;
    options.include_location_events = false;
    for (Asil a : kAllAsilLevels) {
        options.rates.set_rate(ResourceKind::Splitter, a, 0.0);
        options.rates.set_rate(ResourceKind::Merger, a, 0.0);
    }
    const double before = analysis::analyze_failure_probability(base, options).failure_probability;
    for (NodeId n : base.app().node_ids()) {
        const AppNode& node = base.app().node(n);
        if (node.kind != NodeKind::Functional) continue;
        if (node.asil.level == Asil::QM) continue;
        if (base.app().in_degree(n) < 1 || base.app().out_degree(n) < 1) continue;
        ArchitectureModel trial = base;
        transform::expand(trial, n);
        const double after =
            analysis::analyze_failure_probability(trial, options).failure_probability;
        EXPECT_LE(after, before + 1e-18) << "seed " << seed << " node " << node.name;
    }
}

TEST_P(ModelProperty, ApproximationNeverOverestimates) {
    const std::uint32_t seed = GetParam();
    ArchitectureModel m = scenarios::synthetic_model(small_options(seed));
    // Expand the first expandable functional node to create a block.
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        if (node.kind == NodeKind::Functional && m.app().in_degree(n) >= 1 &&
            m.app().out_degree(n) >= 1) {
            transform::expand(m, n);
            break;
        }
    }
    analysis::ProbabilityOptions exact_options;
    analysis::ProbabilityOptions approx_options;
    approx_options.approximate = true;
    const double exact =
        analysis::analyze_failure_probability(m, exact_options).failure_probability;
    const double approx =
        analysis::analyze_failure_probability(m, approx_options).failure_probability;
    EXPECT_LE(approx, exact * (1.0 + 1e-12)) << "seed " << seed;
    EXPECT_GT(approx, 0.9 * exact) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty, ::testing::Range(1u, 13u));

TEST(ParserRobustness, MutatedDocumentsNeverCrash) {
    // Take a valid model document and apply random byte mutations; the
    // parser must either succeed or throw IoError — never crash or hang.
    const std::string valid = io::to_json(scenarios::synthetic_model({})).dump();
    std::mt19937 rng(99);
    for (int trial = 0; trial < 300; ++trial) {
        std::string mutated = valid;
        const std::size_t edits = 1 + rng() % 5;
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng() % mutated.size();
            switch (rng() % 3) {
                case 0: mutated[pos] = static_cast<char>(rng() % 256); break;
                case 1: mutated.erase(pos, 1 + rng() % 3); break;
                default: mutated.insert(pos, 1, static_cast<char>('!' + rng() % 90)); break;
            }
            if (mutated.empty()) mutated = "x";
        }
        try {
            const io::Json parsed = io::Json::parse(mutated);
            // If it still parses, loading may also fail cleanly.
            try {
                (void)io::model_from_json(parsed);
            } catch (const Error&) {
            }
        } catch (const Error&) {
            // expected for malformed documents
        }
    }
    SUCCEED();
}

TEST(ParserRobustness, DeeplyNestedDocumentParses) {
    std::string doc;
    constexpr int kDepth = 2000;
    for (int i = 0; i < kDepth; ++i) doc += '[';
    doc += "1";
    for (int i = 0; i < kDepth; ++i) doc += ']';
    const io::Json parsed = io::Json::parse(doc);
    EXPECT_TRUE(parsed.is_array());
}

}  // namespace
}  // namespace asilkit

#include "analysis/cutsets.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "bdd/from_fault_tree.h"

namespace asilkit::analysis {
namespace {

using SetList = std::vector<CutSet>;

/// Union of two sorted sets.
CutSet merge_sets(const CutSet& a, const CutSet& b) {
    CutSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

/// Removes non-minimal (superset) entries; input entries are sorted sets.
void minimize(SetList& sets) {
    std::sort(sets.begin(), sets.end(), [](const CutSet& a, const CutSet& b) {
        if (a.size() != b.size()) return a.size() < b.size();
        return a < b;
    });
    sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
    SetList minimal;
    for (const CutSet& candidate : sets) {
        const bool dominated = std::any_of(
            minimal.begin(), minimal.end(), [&](const CutSet& kept) {
                return std::includes(candidate.begin(), candidate.end(), kept.begin(), kept.end());
            });
        if (!dominated) minimal.push_back(candidate);
    }
    sets = std::move(minimal);
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const ftree::FaultTree& ft, const CutSetOptions& options) {
    std::unordered_map<std::uint32_t, SetList> gate_memo;

    std::function<SetList(ftree::FtRef)> visit = [&](ftree::FtRef r) -> SetList {
        if (r.kind == ftree::FtRef::Kind::Basic) return {CutSet{r.index}};
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        SetList acc;
        if (g.kind == ftree::GateKind::Or) {
            for (ftree::FtRef c : g.children) {
                SetList child = visit(c);
                acc.insert(acc.end(), std::make_move_iterator(child.begin()),
                           std::make_move_iterator(child.end()));
                if (acc.size() > options.max_sets) {
                    throw AnalysisError("minimal_cut_sets: intermediate set count exceeds max_sets");
                }
            }
        } else {
            acc = {CutSet{}};
            for (ftree::FtRef c : g.children) {
                const SetList child = visit(c);
                SetList next;
                for (const CutSet& a : acc) {
                    for (const CutSet& b : child) {
                        CutSet merged = merge_sets(a, b);
                        if (merged.size() <= options.max_order) next.push_back(std::move(merged));
                    }
                    if (next.size() > options.max_sets) {
                        throw AnalysisError(
                            "minimal_cut_sets: intermediate set count exceeds max_sets");
                    }
                }
                acc = std::move(next);
            }
        }
        minimize(acc);
        gate_memo.emplace(r.index, acc);
        return acc;
    };

    SetList result = visit(ft.top());
    minimize(result);
    std::sort(result.begin(), result.end());
    return result;
}

double cut_set_probability_bound(const ftree::FaultTree& ft, const std::vector<CutSet>& cut_sets,
                                 double mission_hours) {
    double total = 0.0;
    for (const CutSet& cs : cut_sets) {
        double p = 1.0;
        for (std::uint32_t e : cs) {
            p *= bdd::basic_event_probability(ft.basic_event(e).lambda, mission_hours);
        }
        total += p;
    }
    return std::min(total, 1.0);
}

std::size_t minimal_cut_order(const std::vector<CutSet>& cut_sets) noexcept {
    std::size_t best = 0;
    for (const CutSet& cs : cut_sets) {
        if (best == 0 || cs.size() < best) best = cs.size();
    }
    return best;
}

}  // namespace asilkit::analysis

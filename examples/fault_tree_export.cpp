// Model and fault-tree export: serializes the Fig. 3 system to JSON,
// reloads it, generates exact and approximated fault trees, and writes
// Graphviz DOT renderings of all three model layers and both trees.
//
//   $ ./fault_tree_export [output_dir]
#include <filesystem>
#include <iostream>

#include "analysis/importance.h"
#include "ftree/builder.h"
#include "io/dot.h"
#include "io/model_json.h"
#include "scenarios/fig3.h"

using namespace asilkit;

int main(int argc, char** argv) {
    const std::string dir = argc > 1 ? argv[1] : "fig3_export";
    std::filesystem::create_directories(dir);

    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();

    // JSON round trip.
    io::save_model(m, dir + "/fig3.json");
    const ArchitectureModel reloaded = io::load_model(dir + "/fig3.json");
    std::cout << "saved + reloaded model '" << reloaded.name() << "' ("
              << reloaded.app().node_count() << " nodes, " << reloaded.resources().node_count()
              << " resources)\n";

    // DOT renderings of the three layers.
    io::save_text_file(io::app_graph_to_dot(reloaded), dir + "/application.dot");
    io::save_text_file(io::resource_graph_to_dot(reloaded), dir + "/resources.dot");
    io::save_text_file(io::physical_graph_to_dot(reloaded), dir + "/physical.dot");

    // Fault trees: exact and Section-V-approximated.
    ftree::FtBuildOptions exact;
    const ftree::FtBuildResult ft = ftree::build_fault_tree(reloaded, exact);
    ftree::FtBuildOptions approx;
    approx.approximate = true;
    const ftree::FtBuildResult ft_small = ftree::build_fault_tree(reloaded, approx);
    io::save_text_file(io::fault_tree_to_dot(ft.tree), dir + "/fault_tree_exact.dot");
    io::save_text_file(io::fault_tree_to_dot(ft_small.tree), dir + "/fault_tree_approx.dot");
    std::cout << "fault tree: exact " << ft.tree.stats().dag_nodes << " nodes, approximated "
              << ft_small.tree.stats().dag_nodes << " nodes\n";

    // Importance ranking: which base events matter most.
    std::cout << "\ntop basic events by Birnbaum importance:\n";
    const auto importance = analysis::importance_measures(ft.tree);
    for (std::size_t i = 0; i < importance.size() && i < 8; ++i) {
        const auto& e = importance[i];
        std::cout << "  " << e.event << ": birnbaum=" << e.birnbaum
                  << " fussell-vesely=" << e.fussell_vesely << "\n";
    }
    std::cout << "\nartifacts written to " << dir << "/\n";
    return 0;
}

// Span-profile aggregation: folds the tracer's per-thread B/E event
// streams into a per-phase profile — call counts, total and self wall
// time, min/p50/p95/max per span name, and the parent→child call edges
// implied by B/E nesting.
//
// The tracer answers "what happened when" (one line per span, best read
// in Perfetto); the profile answers "where did the time go" across
// thousands of candidate evaluations, where individual spans are noise
// and the aggregate is the signal.  Three renderings:
//   * to_text()      — aligned table, hottest self-time first;
//   * to_json()      — machine-readable, for tooling;
//   * to_collapsed() — Brendan Gregg folded-stack lines
//                      ("a;b;c <self_ns>"), one `flamegraph.pl` away
//                      from a flamegraph.
//
// p50/p95 are estimated from fixed-bucket duration histograms
// (latency_bounds_ns + histogram_quantile) rather than stored samples,
// so profiling a million-span trace costs O(span names), not O(spans).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace asilkit::obs {

struct SpanProfile {
    /// Aggregate over every completed span with this name, all threads.
    /// Self time is the span's duration minus the time spent in child
    /// spans nested inside it; recursion (a span nested inside a
    /// same-named span) double-counts total_ns, as flat profiles do.
    struct Node {
        std::string name;
        std::string cat;
        std::uint64_t count = 0;
        std::uint64_t total_ns = 0;
        std::uint64_t self_ns = 0;
        std::uint64_t min_ns = 0;
        std::uint64_t max_ns = 0;
        double p50_ns = 0.0;  ///< histogram-estimated median duration
        double p95_ns = 0.0;
    };

    /// Parent→child call edge derived from B/E nesting.
    struct Edge {
        std::string parent;
        std::string child;
        std::uint64_t count = 0;
        std::uint64_t total_ns = 0;  ///< child time attributed to this edge
    };

    /// One folded call stack ("search_mapping;iteration;evaluate") and
    /// the self time accumulated there — the collapsed-stack rows.
    struct Stack {
        std::string path;
        std::uint64_t self_ns = 0;
    };

    std::vector<Node> nodes;    ///< sorted by name (deterministic)
    std::vector<Edge> edges;    ///< sorted by (parent, child)
    std::vector<Stack> stacks;  ///< sorted by path
    /// Spans still open (or with their B dropped at the buffer cap) at
    /// snapshot time; their partial time is not attributed anywhere.
    std::uint64_t unmatched = 0;

    [[nodiscard]] const Node* find(std::string_view name) const noexcept;

    [[nodiscard]] std::string to_text() const;
    [[nodiscard]] std::string to_json() const;
    [[nodiscard]] std::string to_collapsed() const;
};

/// Replays `events` (as returned by snapshot_events(): timestamp-sorted,
/// per-thread record order preserved) through one stack per thread and
/// aggregates.  'I' instants are skipped; an 'E' whose name does not
/// match the open span (possible only when the per-thread buffer cap
/// dropped its 'B') is counted as unmatched and ignored.
[[nodiscard]] SpanProfile build_profile(std::span<const TraceEvent> events);

/// Convenience: profile whatever the tracer currently has buffered,
/// without consuming it.
[[nodiscard]] SpanProfile profile_current_trace();

}  // namespace asilkit::obs

// OpenMetrics exposition: name mangling, counter/gauge/histogram
// rendering with cumulative buckets, and the mandatory terminator.
// Snapshots are hand-built so the expected text is exact.
#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace asilkit::obs {
namespace {

TEST(OpenMetricsName, MapsDottedIdsToLegalNames) {
    EXPECT_EQ(openmetrics_name("bdd.apply_hits"), "bdd_apply_hits");
    EXPECT_EQ(openmetrics_name("engine.cache.hits"), "engine_cache_hits");
    EXPECT_EQ(openmetrics_name("already_legal:name"), "already_legal:name");
    EXPECT_EQ(openmetrics_name("has-dash and space"), "has_dash_and_space");
    EXPECT_EQ(openmetrics_name("9starts.with.digit"), "_9starts_with_digit");
    EXPECT_EQ(openmetrics_name(""), "_");  // never an illegal empty name
}

TEST(OpenMetrics, EmptySnapshotIsJustTheTerminator) {
    EXPECT_EQ(to_openmetrics(MetricsSnapshot{}), "# EOF\n");
}

TEST(OpenMetrics, CountersGetTotalSuffixAndTypeLine) {
    MetricsSnapshot snap;
    snap.counters.push_back({"engine.analyze_calls", 41});
    const std::string text = to_openmetrics(snap);
    EXPECT_NE(text.find("# TYPE engine_analyze_calls counter\n"), std::string::npos);
    EXPECT_NE(text.find("engine_analyze_calls_total 41\n"), std::string::npos);
    EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetrics, GaugesRenderVerbatim) {
    MetricsSnapshot snap;
    snap.gauges.push_back({"engine.queue_depth", 2.5});
    const std::string text = to_openmetrics(snap);
    EXPECT_NE(text.find("# TYPE engine_queue_depth gauge\n"), std::string::npos);
    EXPECT_NE(text.find("engine_queue_depth 2.5\n"), std::string::npos);
}

TEST(OpenMetrics, HistogramBucketsAreCumulativeWithInf) {
    MetricsSnapshot snap;
    MetricsSnapshot::HistogramSample hist;
    hist.id = "engine.analyze_ns";
    hist.bounds = {10.0, 100.0};
    hist.counts = {3, 2, 1};  // per-bucket; exposition must cumulate
    hist.count = 6;
    hist.sum = 250.5;
    snap.histograms.push_back(std::move(hist));
    const std::string text = to_openmetrics(snap);

    EXPECT_NE(text.find("# TYPE engine_analyze_ns histogram\n"), std::string::npos);
    EXPECT_NE(text.find("engine_analyze_ns_bucket{le=\"10\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("engine_analyze_ns_bucket{le=\"100\"} 5\n"), std::string::npos);
    EXPECT_NE(text.find("engine_analyze_ns_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
    EXPECT_NE(text.find("engine_analyze_ns_sum 250.5\n"), std::string::npos);
    EXPECT_NE(text.find("engine_analyze_ns_count 6\n"), std::string::npos);
    // +Inf must equal _count: the spec's self-consistency requirement.
}

TEST(OpenMetrics, RealRegistryRoundTrips) {
    Registry::global().counter("test.om.requests").add(3);
    Registry::global().gauge("test.om.depth").set(1.5);
    const std::string text = to_openmetrics(Registry::global().snapshot());
    EXPECT_NE(text.find("test_om_requests_total 3"), std::string::npos);
    EXPECT_NE(text.find("test_om_depth 1.5"), std::string::npos);
    // Exactly one terminator, at the very end.
    EXPECT_EQ(text.find("# EOF\n"), text.size() - 6);
}

}  // namespace
}  // namespace asilkit::obs

file(REMOVE_RECURSE
  "CMakeFiles/test_mapping_search.dir/test_mapping_search.cpp.o"
  "CMakeFiles/test_mapping_search.dir/test_mapping_search.cpp.o.d"
  "test_mapping_search"
  "test_mapping_search.pdb"
  "test_mapping_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

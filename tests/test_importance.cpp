#include "analysis/importance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ftree/builder.h"
#include "scenarios/fig3.h"

namespace asilkit::analysis {
namespace {

using ftree::FaultTree;
using ftree::GateKind;

TEST(Importance, SingleEventIsFullyImportant) {
    FaultTree ft;
    ft.set_top(ft.add_basic_event("e", 0.1));
    const auto entries = importance_measures(ft);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_NEAR(entries[0].birnbaum, 1.0, 1e-12);
    EXPECT_NEAR(entries[0].fussell_vesely, 1.0, 1e-12);
    EXPECT_NEAR(entries[0].criticality, 1.0, 1e-12);
}

TEST(Importance, SeriesEventsHaveBirnbaumNearOne) {
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 0.01);
    const auto b = ft.add_basic_event("b", 0.02);
    ft.set_top(ft.add_gate("top", GateKind::Or, {a, b}));
    const auto entries = importance_measures(ft);
    ASSERT_EQ(entries.size(), 2u);
    // Birnbaum of a in a|b: 1 - p(b).
    const double pa = 1.0 - std::exp(-0.01);
    const double pb = 1.0 - std::exp(-0.02);
    for (const auto& e : entries) {
        if (e.event == "a") { EXPECT_NEAR(e.birnbaum, 1.0 - pb, 1e-12); }
        if (e.event == "b") { EXPECT_NEAR(e.birnbaum, 1.0 - pa, 1e-12); }
    }
}

TEST(Importance, AndGateBirnbaumIsPartnerProbability) {
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 0.1);
    const auto b = ft.add_basic_event("b", 0.4);
    ft.set_top(ft.add_gate("top", GateKind::And, {a, b}));
    const auto entries = importance_measures(ft);
    const double pa = 1.0 - std::exp(-0.1);
    const double pb = 1.0 - std::exp(-0.4);
    for (const auto& e : entries) {
        if (e.event == "a") { EXPECT_NEAR(e.birnbaum, pb, 1e-12); }
        if (e.event == "b") { EXPECT_NEAR(e.birnbaum, pa, 1e-12); }
    }
    // The more likely partner makes the other event more important.
    EXPECT_EQ(entries.front().event, "a");
}

TEST(Importance, SortedDescendingByBirnbaum) {
    const auto m = scenarios::fig3_camera_gps_fusion();
    const auto ft = ftree::build_fault_tree(m);
    const auto entries = importance_measures(ft.tree);
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GE(entries[i - 1].birnbaum, entries[i].birnbaum);
    }
}

TEST(Importance, SeriesSensorsDominateFig3) {
    // The two B-rated sensors carry nearly all of the system failure
    // probability; branch hardware is nearly irrelevant.
    const auto m = scenarios::fig3_camera_gps_fusion();
    const auto ft = ftree::build_fault_tree(m);
    const auto entries = importance_measures(ft.tree);
    double camera_fv = 0.0;
    double ecu1_fv = 1.0;
    for (const auto& e : entries) {
        if (e.event == "res:camera_hw") camera_fv = e.fussell_vesely;
        if (e.event == "res:ecu1") ecu1_fv = e.fussell_vesely;
    }
    EXPECT_GT(camera_fv, 0.4);
    EXPECT_LT(ecu1_fv, 1e-3);
}

TEST(Importance, FussellVeselyWithinUnitInterval) {
    const auto m = scenarios::fig3_camera_gps_fusion();
    const auto ft = ftree::build_fault_tree(m);
    for (const auto& e : importance_measures(ft.tree)) {
        EXPECT_GE(e.fussell_vesely, 0.0) << e.event;
        EXPECT_LE(e.fussell_vesely, 1.0 + 1e-12) << e.event;
        EXPECT_GE(e.birnbaum, -1e-12) << e.event;
        EXPECT_LE(e.birnbaum, 1.0 + 1e-12) << e.event;
    }
}

TEST(Importance, ZeroProbabilityTopYieldsZeroes) {
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 0.0);
    ft.set_top(ft.add_gate("top", GateKind::And, {a, a}));
    const auto entries = importance_measures(ft);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_DOUBLE_EQ(entries[0].criticality, 0.0);
}

}  // namespace
}  // namespace asilkit::analysis


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ccf.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/ccf.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/ccf.cpp.o.d"
  "/root/repo/src/analysis/cutsets.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/cutsets.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/cutsets.cpp.o.d"
  "/root/repo/src/analysis/fmea.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/fmea.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/fmea.cpp.o.d"
  "/root/repo/src/analysis/importance.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/importance.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/importance.cpp.o.d"
  "/root/repo/src/analysis/probability.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/probability.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/probability.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/sensitivity.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/simulation.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/simulation.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/simulation.cpp.o.d"
  "/root/repo/src/analysis/tolerance.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/tolerance.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/tolerance.cpp.o.d"
  "/root/repo/src/analysis/traceability.cpp" "src/analysis/CMakeFiles/asilkit_analysis.dir/traceability.cpp.o" "gcc" "src/analysis/CMakeFiles/asilkit_analysis.dir/traceability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ftree/CMakeFiles/asilkit_ftree.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/asilkit_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Tests for asilkit-archcheck: layer-spec parsing, closure semantics,
// seeded-fixture detection (include cycle, layering violation), the
// clean-tree guarantee on the real src/, and SARIF shape.
#include "archcheck.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/error.h"
#include "io/json.h"

namespace asilkit::archcheck {
namespace {

// Paths baked in by tests/CMakeLists.txt.
const std::string kRepoRoot = ASILKIT_SOURCE_DIR;
const std::string kFixtures = kRepoRoot + "/tests/fixtures/archcheck";

LayerSpec spec_from_text(const std::string& text) {
    return parse_layers(io::Json::parse(text));
}

TEST(ArchcheckSpec, ParsesLayersAndIgnoresCommentKeys) {
    const LayerSpec spec = spec_from_text(
        R"({"_comment": ["ignored"], "layers": {"core": [], "io": ["core"]}})");
    EXPECT_TRUE(spec.declares("core"));
    EXPECT_TRUE(spec.declares("io"));
    EXPECT_FALSE(spec.declares("_comment"));
    EXPECT_EQ(spec.allowed.size(), 2u);
}

TEST(ArchcheckSpec, RejectsMalformedDocuments) {
    EXPECT_THROW(spec_from_text(R"([1, 2])"), IoError);
    EXPECT_THROW(spec_from_text(R"({"no_layers": true})"), IoError);
    EXPECT_THROW(spec_from_text(R"({"layers": {"core": "not-an-array"}})"), IoError);
    EXPECT_THROW(spec_from_text(R"({"layers": {}})"), IoError);
}

TEST(ArchcheckSpec, ClosureIsTransitiveAndExcludesSelf) {
    const LayerSpec spec = spec_from_text(
        R"({"layers": {"a": ["b"], "b": ["c"], "c": [], "d": ["a"]}})");
    EXPECT_EQ(spec.closure("d"), (std::set<std::string>{"a", "b", "c"}));
    EXPECT_EQ(spec.closure("a"), (std::set<std::string>{"b", "c"}));
    EXPECT_TRUE(spec.closure("c").empty());
    // Undeclared layers have empty closures rather than throwing: the
    // analyzer reports them through arch.undeclared-layer instead.
    EXPECT_TRUE(spec.closure("zzz").empty());
}

TEST(ArchcheckSpec, SelfCycleStaysOutOfItsOwnClosure) {
    const LayerSpec spec = spec_from_text(R"({"layers": {"a": ["b"], "b": ["a"]}})");
    EXPECT_EQ(spec.closure("a"), (std::set<std::string>{"b"}));
}

std::vector<Finding> findings_for_rule(const Report& report, const std::string& rule) {
    std::vector<Finding> out;
    for (const Finding& f : report.findings) {
        if (f.rule == rule) out.push_back(f);
    }
    return out;
}

TEST(ArchcheckAnalyze, DetectsSeededIncludeCycle) {
    const LayerSpec spec = load_layers(kFixtures + "/cycle/layers.json");
    const Report report = analyze_tree(kFixtures + "/cycle/src", spec);

    const auto cycles = findings_for_rule(report, kRuleCycle);
    ASSERT_EQ(cycles.size(), 1u) << to_text(report);
    EXPECT_EQ(cycles[0].file, "alpha/a.h");
    EXPECT_NE(cycles[0].message.find("alpha/a.h"), std::string::npos);
    EXPECT_NE(cycles[0].message.find("alpha/b.h"), std::string::npos);

    // beta/c.h -> alpha/b.h is declared and must not be flagged.
    EXPECT_TRUE(findings_for_rule(report, kRuleLayerViolation).empty()) << to_text(report);
    EXPECT_EQ(report.files_scanned, 3u);
    EXPECT_FALSE(report.clean());
}

TEST(ArchcheckAnalyze, DetectsSeededLayeringViolation) {
    const LayerSpec spec = load_layers(kFixtures + "/layering/layers.json");
    const Report report = analyze_tree(kFixtures + "/layering/src", spec);

    const auto violations = findings_for_rule(report, kRuleLayerViolation);
    ASSERT_EQ(violations.size(), 1u) << to_text(report);
    EXPECT_EQ(violations[0].file, "core/util.h");
    EXPECT_EQ(violations[0].line, 3);  // the engine/pool.h include
    EXPECT_NE(violations[0].message.find("\"core\""), std::string::npos);
    EXPECT_NE(violations[0].message.find("\"engine\""), std::string::npos);

    // engine -> core is declared; only the upward edge is flagged.
    EXPECT_TRUE(findings_for_rule(report, kRuleCycle).empty()) << to_text(report);
    EXPECT_EQ(report.layers_seen, 2u);
}

TEST(ArchcheckAnalyze, FlagsUndeclaredLayersOncePerLayer) {
    const LayerSpec spec = spec_from_text(R"({"layers": {"core": []}})");
    const Report report = analyze_tree(kFixtures + "/layering/src", spec);
    const auto undeclared = findings_for_rule(report, kRuleUndeclaredLayer);
    ASSERT_EQ(undeclared.size(), 1u) << to_text(report);
    EXPECT_NE(undeclared[0].message.find("\"engine\""), std::string::npos);
}

TEST(ArchcheckAnalyze, FlagsCyclicDeclaredDag) {
    const LayerSpec spec = spec_from_text(R"({"layers": {"a": ["b"], "b": ["a"]}})");
    const Report report = analyze_tree(kFixtures + "/cycle/src", spec);
    EXPECT_FALSE(findings_for_rule(report, kRuleSpecCycle).empty()) << to_text(report);
}

TEST(ArchcheckAnalyze, FlagsDanglingSpecDependency) {
    const LayerSpec spec = spec_from_text(R"({"layers": {"alpha": ["ghost"], "beta": ["alpha"]}})");
    const Report report = analyze_tree(kFixtures + "/cycle/src", spec);
    const auto dangling = findings_for_rule(report, kRuleSpecCycle);
    ASSERT_EQ(dangling.size(), 1u) << to_text(report);
    EXPECT_NE(dangling[0].message.find("\"ghost\""), std::string::npos);
}

TEST(ArchcheckAnalyze, ThrowsOnMissingRoot) {
    const LayerSpec spec = spec_from_text(R"({"layers": {"core": []}})");
    EXPECT_THROW(analyze_tree(kFixtures + "/no-such-dir", spec), IoError);
}

// The guarantee CI relies on: the real source tree is clean under the
// checked-in layer spec.  A failure here means either an architectural
// regression or a stale tools/archcheck/layers.json.
TEST(ArchcheckAnalyze, RealSourceTreeIsClean) {
    const LayerSpec spec = load_layers(kRepoRoot + "/tools/archcheck/layers.json");
    const Report report = analyze_tree(kRepoRoot + "/src", spec);
    EXPECT_TRUE(report.clean()) << to_text(report);
    EXPECT_GT(report.files_scanned, 100u);
    EXPECT_GT(report.include_edges, 200u);
    EXPECT_GE(report.layers_seen, 14u);
}

TEST(ArchcheckOutput, TextRendersFindingsAndSummary) {
    const LayerSpec spec = load_layers(kFixtures + "/layering/layers.json");
    const Report report = analyze_tree(kFixtures + "/layering/src", spec);
    const std::string text = to_text(report);
    EXPECT_NE(text.find("core/util.h:3: error:"), std::string::npos) << text;
    EXPECT_NE(text.find("[arch.layer-violation]"), std::string::npos) << text;
    EXPECT_NE(text.find("1 finding"), std::string::npos) << text;
}

TEST(ArchcheckOutput, SarifCarriesRequiredPropertiesAndPhysicalLocations) {
    const LayerSpec spec = load_layers(kFixtures + "/layering/layers.json");
    const Report report = analyze_tree(kFixtures + "/layering/src", spec);
    const io::Json doc = to_sarif(report);

    EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
    EXPECT_FALSE(doc.at("$schema").as_string().empty());
    const io::Json& run = doc.at("runs").as_array().at(0);
    const io::Json& driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").as_string(), "asilkit-archcheck");
    EXPECT_EQ(driver.at("rules").size(), 4u);

    const io::JsonArray& results = run.at("results").as_array();
    ASSERT_EQ(results.size(), 1u);
    const io::Json& result = results.at(0);
    EXPECT_EQ(result.at("ruleId").as_string(), kRuleLayerViolation);
    EXPECT_EQ(result.at("level").as_string(), "error");
    const io::Json& physical = result.at("locations").as_array().at(0).at("physicalLocation");
    EXPECT_EQ(physical.at("artifactLocation").at("uri").as_string(), "core/util.h");
    EXPECT_EQ(physical.at("region").at("startLine").as_int(), 3);
}

TEST(ArchcheckOutput, FindingsAreDeterministicallySorted) {
    // Run the same analysis twice; reports must be identical, and the
    // findings ordered by (file, line, rule).
    const LayerSpec spec = spec_from_text(R"({"layers": {"core": []}})");
    const Report a = analyze_tree(kFixtures + "/layering/src", spec);
    const Report b = analyze_tree(kFixtures + "/layering/src", spec);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].message, b.findings[i].message);
    }
    EXPECT_TRUE(std::is_sorted(a.findings.begin(), a.findings.end(),
                               [](const Finding& x, const Finding& y) {
                                   return std::tie(x.file, x.line, x.rule, x.message) <
                                          std::tie(y.file, y.line, y.rule, y.message);
                               }));
}

}  // namespace
}  // namespace asilkit::archcheck

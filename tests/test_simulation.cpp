#include "analysis/simulation.h"

#include <gtest/gtest.h>

#include "analysis/probability.h"
#include "ftree/builder.h"
#include "helpers.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::analysis {
namespace {

TEST(Simulation, SingleEventMatchesAnalyticValue) {
    ftree::FaultTree ft;
    ft.set_top(ft.add_basic_event("e", 0.105360516));  // p(1h) ~= 0.1
    SimulationOptions options;
    options.trials = 200000;
    const SimulationResult r = simulate_fault_tree(ft, options);
    EXPECT_TRUE(r.consistent_with(0.1)) << r.estimate;
    EXPECT_NEAR(r.estimate, 0.1, 0.005);
    EXPECT_EQ(r.trials, 200000u);
}

TEST(Simulation, AndGateMatchesProduct) {
    ftree::FaultTree ft;
    const auto a = ft.add_basic_event("a", 0.5);
    const auto b = ft.add_basic_event("b", 0.5);
    ft.set_top(ft.add_gate("top", ftree::GateKind::And, {a, b}));
    SimulationOptions options;
    options.trials = 200000;
    const SimulationResult r = simulate_fault_tree(ft, options);
    const double p = 1.0 - std::exp(-0.5);
    EXPECT_TRUE(r.consistent_with(p * p)) << r.estimate;
}

TEST(Simulation, AgreesWithBddOnRandomTrees) {
    // The cross-validation this module exists for: two independent
    // implementations must agree within the confidence interval.
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 8, 5);
        const double exact = fault_tree_probability(ft);
        SimulationOptions options;
        options.trials = 100000;
        options.seed = seed;
        const SimulationResult r = simulate_fault_tree(ft, options);
        EXPECT_TRUE(r.consistent_with(exact))
            << "seed " << seed << ": exact " << exact << " vs [" << r.ci95_low << ", "
            << r.ci95_high << "]";
    }
}

TEST(Simulation, AgreesWithBddOnFig3AtScaledRates) {
    // Automotive rates are too small for naive sampling; scale them up so
    // the top probability is ~1e-2 and compare against the (also scaled)
    // exact analysis.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const double scale = 1e5;
    SimulationOptions sim_options;
    sim_options.trials = 400000;
    sim_options.rate_scale = scale;
    const SimulationResult r = simulate_failure_probability(m, sim_options);

    ProbabilityOptions exact_options;
    exact_options.mission_hours = scale;  // same scaling, analytically
    const double exact = analyze_failure_probability(m, exact_options).failure_probability;
    EXPECT_TRUE(r.consistent_with(exact))
        << "exact " << exact << " vs [" << r.ci95_low << ", " << r.ci95_high << "]";
}

TEST(Simulation, SeedReproducible) {
    const ftree::FaultTree ft = testing::random_fault_tree(3, 6, 4);
    SimulationOptions options;
    options.trials = 10000;
    options.seed = 42;
    const SimulationResult a = simulate_fault_tree(ft, options);
    const SimulationResult b = simulate_fault_tree(ft, options);
    EXPECT_EQ(a.failures, b.failures);
    options.seed = 43;
    const SimulationResult c = simulate_fault_tree(ft, options);
    EXPECT_NE(a.failures, c.failures);  // overwhelmingly likely
}

TEST(Simulation, RedundancyShowsUpInSampling) {
    // At inflated rates, an expanded (redundant) chain must fail less
    // often than the original in simulation too.  Rate inflation is not
    // scale-invariant: the B-grade branch hardware (100x the D rate)
    // would saturate to p ~ 1 and invert the comparison, so the test
    // pins every class used by the expanded model to the D rate — the
    // comparison then isolates the *structural* effect of redundancy.
    ArchitectureModel original = scenarios::chain_1in_1out();
    ArchitectureModel expanded = scenarios::chain_1in_1out();
    transform::expand(expanded, expanded.find_app_node("n"));
    SimulationOptions options;
    options.trials = 100000;
    options.rate_scale = 5e7;  // D resources: p ~ 0.05
    options.rates.set_rate(ResourceKind::Functional, Asil::B, 1e-9);
    options.rates.set_rate(ResourceKind::Communication, Asil::B, 1e-9);
    const SimulationResult r_orig = simulate_failure_probability(original, options);
    const SimulationResult r_exp = simulate_failure_probability(expanded, options);
    EXPECT_LT(r_exp.estimate, r_orig.estimate);
}

TEST(Simulation, ZeroFailureRunBracketsZero) {
    ftree::FaultTree ft;
    ft.set_top(ft.add_basic_event("never", 0.0));
    SimulationOptions options;
    options.trials = 1000;
    const SimulationResult r = simulate_fault_tree(ft, options);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_TRUE(r.consistent_with(0.0));
}

TEST(Simulation, MissingTopThrows) {
    const ftree::FaultTree ft;
    EXPECT_THROW((void)simulate_fault_tree(ft), AnalysisError);
}

}  // namespace
}  // namespace asilkit::analysis

# Empty compiler generated dependencies file for asilkit_transform.
# This may be replaced when dependencies are built.

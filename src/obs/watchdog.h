// Threshold watchdog: declarative rules evaluated against registry
// samples, firing structured NDJSON events when a metric breaches its
// threshold for long enough.
//
// A rule is (metric, comparator, threshold, for_duration): "fire when
// `engine.queue_depth > 500` has held for 5 s", "fire when the
// EvalCache hit ratio `engine.cache.hits/engine.cache.misses` drops
// below 0.25 for 2 s".  Rules are evaluated by the time-series sampler
// thread on its period (obs/timeseries.h), or directly via evaluate()
// with synthetic timestamps — which is how the unit tests drive the
// for_duration logic deterministically, no clocks involved.
//
// Firing discipline: a rule fires ONCE when its breach has persisted
// for at least `for_ns`, stays silent while the breach continues, and
// emits a matching "clear" event when the metric recovers — so a flappy
// metric produces fire/clear pairs, not a firehose.  Events append to
// an optional NDJSON sink (stderr or a file; one JSON object per line,
// flushed per event so `tail -f` works) and are kept in memory for
// inspection.
//
// Rule files are JSON (loaded by io::load_watch_rules — the obs layer
// itself depends only on core and parses nothing):
//   {"rules": [{"id": "queue-deep", "metric": "engine.queue_depth",
//               "op": ">", "threshold": 500, "for_ms": 5000}, ...]}
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"

namespace asilkit::obs {

struct MetricsSnapshot;

struct WatchdogRule {
    enum class Op : std::uint8_t { Lt, Le, Gt, Ge };

    std::string id;      ///< stable rule name, echoed in every event
    std::string metric;  ///< registry id, or "a/b" for the ratio of two ids
    Op op = Op::Gt;
    double threshold = 0.0;
    std::uint64_t for_ns = 0;  ///< breach must persist this long before firing
};

/// "<", "<=", ">", ">=" (or "lt"/"le"/"gt"/"ge"); nullopt on anything else.
[[nodiscard]] std::optional<WatchdogRule::Op> parse_op(std::string_view text);

struct WatchdogEvent {
    std::string rule;
    std::string metric;
    bool fired = true;  ///< true = "fire", false = "clear"
    double value = 0.0;
    double threshold = 0.0;
    std::uint64_t ts_ns = 0;      ///< evaluation timestamp of the transition
    std::uint64_t window_ns = 0;  ///< breach duration at the transition

    /// One-line JSON object (no trailing newline).
    [[nodiscard]] std::string to_ndjson() const;
};

class Watchdog {
public:
    Watchdog() = default;
    explicit Watchdog(std::vector<WatchdogRule> rules);

    /// NDJSON event sink (nullptr = in-memory only).  Not owned; must
    /// outlive evaluation.  Set before the sampler starts.
    void set_sink(std::ostream* sink);

    /// Evaluates every rule against `snapshot` at time `now_ns`
    /// (monotonic, caller-supplied — the sampler passes steady-clock
    /// nanoseconds, tests pass synthetic values).  A metric that cannot
    /// be resolved (unknown id, ratio with zero denominator) counts as
    /// "no data": the rule is treated as recovered, never as breached.
    void evaluate(std::uint64_t now_ns, const MetricsSnapshot& snapshot);

    [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
    /// Copy of every event emitted so far, in emission order.
    [[nodiscard]] std::vector<WatchdogEvent> events() const;
    /// Fire events only (the count benches and tests usually want).
    [[nodiscard]] std::size_t fire_count() const;

    /// Resolves a rule metric against a snapshot: a plain id looks up
    /// counters, then gauges, then histogram `<id>.count` / `<id>.sum`
    /// projections; "a/b" divides two resolved ids (nullopt when the
    /// denominator is 0).  Exposed for tests and the CLI's rule lint.
    [[nodiscard]] static std::optional<double> resolve_metric(
        std::string_view metric, const MetricsSnapshot& snapshot);

private:
    struct RuleState {
        bool breaching = false;
        bool fired = false;
        std::uint64_t breach_start_ns = 0;
    };

    void emit(const WatchdogEvent& event) REQUIRES(mutex_);

    std::vector<WatchdogRule> rules_;  // immutable after construction
    mutable core::Mutex mutex_;
    std::vector<RuleState> states_ GUARDED_BY(mutex_);
    std::vector<WatchdogEvent> events_ GUARDED_BY(mutex_);
    std::ostream* sink_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace asilkit::obs

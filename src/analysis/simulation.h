// Monte Carlo fault simulation.
//
// An independent estimator for the top-event probability: sample every
// basic event as Bernoulli(p_i), evaluate the fault tree, repeat.  Used
// as a cross-validation substrate for the analytic (BDD) pipeline — the
// two implementations share no code beyond the fault tree itself, so
// agreement within the confidence interval is strong evidence of
// correctness.
//
// Naive sampling cannot resolve automotive-scale probabilities (1e-9
// needs ~1e11 trials), so validation runs scale the rates up
// (`rate_scale`) into the regime where a few hundred thousand trials
// give tight intervals; the BDD is exact at every scale, so agreement at
// inflated rates validates the machinery.
#pragma once

#include <cstdint>

#include "ftree/fault_tree.h"
#include "model/architecture.h"
#include "model/failure_rates.h"

namespace asilkit::analysis {

struct SimulationOptions {
    std::uint64_t trials = 100000;
    std::uint32_t seed = 1;
    double mission_hours = 1.0;
    /// Multiplies every basic-event rate before sampling (validation aid).
    double rate_scale = 1.0;
    bool include_location_events = true;
    FailureRates rates{};
};

struct SimulationResult {
    double estimate = 0.0;   ///< failures / trials
    double std_error = 0.0;  ///< sqrt(p(1-p)/n)
    double ci95_low = 0.0;
    double ci95_high = 0.0;
    std::uint64_t failures = 0;
    std::uint64_t trials = 0;

    /// True when `value` lies within the 95% confidence interval.
    [[nodiscard]] bool consistent_with(double value) const noexcept {
        return value >= ci95_low && value <= ci95_high;
    }
};

/// Simulates an already-built fault tree.
[[nodiscard]] SimulationResult simulate_fault_tree(const ftree::FaultTree& ft,
                                                   const SimulationOptions& options = {});

/// Builds the model's fault tree (exact form) and simulates it.
[[nodiscard]] SimulationResult simulate_failure_probability(const ArchitectureModel& m,
                                                            const SimulationOptions& options = {});

}  // namespace asilkit::analysis

#include "ftree/modules.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <utility>

#include "core/hash.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::ftree {
namespace {

constexpr std::uint64_t kLeafEventSalt = 0x6261736963ull;   // "basic"
constexpr std::uint64_t kPseudoSalt = 0x6D6F64756C65ull;    // "module"
constexpr std::uint64_t kGateSalt = 0x67617465ull;          // "gate"
constexpr std::uint64_t kModuleTreeSalt = 0x6D74726565ull;  // "mtree"

[[nodiscard]] std::uint64_t lambda_bits(double lambda) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(lambda));
    std::memcpy(&bits, &lambda, sizeof(bits));
    return bits;
}

}  // namespace

namespace {

/// Counts a finished decomposition into the "ftree.*" registry ids.
void count_decomposition(const ModuleDecomposition& dec) {
    static obs::Counter& decompositions =
        obs::Registry::global().counter("ftree.module_decompositions");
    static obs::Gauge& module_count = obs::Registry::global().gauge("ftree.module_count");
    decompositions.inc();
    module_count.set(static_cast<double>(dec.size()));
}

}  // namespace

ModuleDecomposition find_modules(const FaultTree& ft) {
    const obs::ObsSpan span("find_modules", "ftree");
    ModuleDecomposition dec;
    const FtRef top = ft.top();

    if (top.kind == FtRef::Kind::Basic) {
        Module m;
        m.root = top;
        m.basic_events = 1;
        m.subtree_hash = hash::combine(
            kModuleTreeSalt, hash::combine(hash::combine(kLeafEventSalt, 0),
                                           lambda_bits(ft.basic_event(top.index).lambda)));
        dec.modules.push_back(std::move(m));
        count_decomposition(dec);
        return dec;
    }

    const std::size_t gate_count = ft.gates().size();
    const std::size_t basic_count = ft.basic_events().size();

    // Phase 1: DFS visit dates.  Every edge is traversed exactly once
    // (an already-expanded gate is dated again but not re-expanded), so
    // a node referenced from outside a subtree carries a visit date
    // outside that subtree root's [first-arrival, completion] window.
    constexpr std::uint64_t kUnvisited = 0;
    std::vector<std::uint64_t> basic_lo(basic_count, kUnvisited);
    std::vector<std::uint64_t> basic_hi(basic_count, 0);
    std::vector<std::uint64_t> gate_lo(gate_count, kUnvisited);
    std::vector<std::uint64_t> gate_hi(gate_count, 0);
    std::vector<std::uint64_t> gate_fin(gate_count, 0);
    std::uint64_t t = 0;
    std::function<void(FtRef)> visit = [&](FtRef r) {
        ++t;
        if (r.kind == FtRef::Kind::Basic) {
            if (basic_lo[r.index] == kUnvisited) basic_lo[r.index] = t;
            basic_hi[r.index] = t;
            return;
        }
        if (gate_lo[r.index] != kUnvisited) {
            gate_hi[r.index] = t;  // dates are monotone: later revisits win
            return;
        }
        gate_lo[r.index] = t;
        for (FtRef c : ft.gate(r.index).children) visit(c);
        ++t;
        gate_fin[r.index] = t;
        gate_hi[r.index] = t;
    };
    visit(top);

    // Phase 2: per-node min/max visit date over the node and all its
    // descendants, memoised over the DAG.
    std::vector<std::uint64_t> gate_min(gate_count, 0);
    std::vector<std::uint64_t> gate_max(gate_count, 0);
    std::vector<char> agg_done(gate_count, 0);
    std::function<std::pair<std::uint64_t, std::uint64_t>(FtRef)> agg =
        [&](FtRef r) -> std::pair<std::uint64_t, std::uint64_t> {
        if (r.kind == FtRef::Kind::Basic) return {basic_lo[r.index], basic_hi[r.index]};
        if (agg_done[r.index]) return {gate_min[r.index], gate_max[r.index]};
        std::uint64_t mn = gate_lo[r.index];
        std::uint64_t mx = gate_hi[r.index];
        for (FtRef c : ft.gate(r.index).children) {
            const auto [cmn, cmx] = agg(c);
            mn = std::min(mn, cmn);
            mx = std::max(mx, cmx);
        }
        agg_done[r.index] = 1;
        gate_min[r.index] = mn;
        gate_max[r.index] = mx;
        return {mn, mx};
    };
    agg(top);

    // Phase 3: the module test.  A gate is a module iff every strict
    // descendant's dates stay inside its own expansion window — i.e. no
    // descendant is also referenced from outside the subtree.  The
    // gate's own revisit dates are deliberately excluded: a shared
    // module is still a module (its pseudo-variable simply occurs
    // several times in the enclosing region).
    std::vector<char> is_module(gate_count, 0);
    for (std::uint32_t g = 0; g < gate_count; ++g) {
        if (gate_lo[g] == kUnvisited) continue;  // unreachable from top
        bool mod = true;
        for (FtRef c : ft.gate(g).children) {
            const auto [cmn, cmx] = agg(c);
            if (cmn < gate_lo[g] || cmx > gate_fin[g]) {
                mod = false;
                break;
            }
        }
        is_module[g] = mod ? 1 : 0;
    }
    is_module[top.index] = 1;  // the whole tree is always a module

    // Phase 4: build the decomposition bottom-up.  Each module's local
    // region is walked depth-first; nested module roots become pseudo
    // leaves whose hash composes the child module's subtree hash, so
    // the resulting hash is a context-free fingerprint of the module's
    // full subtree.  Local leaf ids (events and pseudo leaves share one
    // first-occurrence counter) capture the sharing pattern exactly as
    // FaultTree::structural_hash() does.
    std::function<std::uint32_t(FtRef)> build = [&](FtRef mroot) -> std::uint32_t {
        if (auto it = dec.module_of_gate.find(mroot.index); it != dec.module_of_gate.end()) {
            return it->second;
        }
        Module m;
        m.root = mroot;
        std::uint64_t next_leaf = 0;
        std::unordered_map<std::uint32_t, std::uint64_t> event_leaf;
        std::unordered_map<std::uint32_t, std::uint64_t> pseudo_leaf;
        std::unordered_map<std::uint32_t, std::uint64_t> gate_memo;
        std::function<std::uint64_t(FtRef, bool)> walk = [&](FtRef r,
                                                             bool at_root) -> std::uint64_t {
            if (r.kind == FtRef::Kind::Basic) {
                const auto [it, inserted] = event_leaf.try_emplace(r.index, next_leaf);
                if (inserted) ++next_leaf;
                return hash::combine(hash::combine(kLeafEventSalt, it->second),
                                     lambda_bits(ft.basic_event(r.index).lambda));
            }
            if (!at_root && is_module[r.index]) {
                const std::uint32_t child = build(r);
                const auto [it, inserted] = pseudo_leaf.try_emplace(r.index, next_leaf);
                if (inserted) {
                    ++next_leaf;
                    m.child_modules.push_back(child);
                }
                return hash::combine(hash::combine(kPseudoSalt, it->second),
                                     dec.modules[child].subtree_hash);
            }
            if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
            const Gate& g = ft.gate(r.index);
            std::uint64_t h = hash::combine(kGateSalt, static_cast<std::uint64_t>(g.kind));
            for (FtRef c : g.children) h = hash::combine(h, walk(c, false));
            gate_memo.emplace(r.index, h);
            return h;
        };
        m.subtree_hash = hash::combine(kModuleTreeSalt, walk(mroot, true));
        m.basic_events = event_leaf.size();
        const auto index = static_cast<std::uint32_t>(dec.modules.size());
        dec.module_of_gate.emplace(mroot.index, index);
        dec.modules.push_back(std::move(m));
        return index;
    };
    build(top);
    count_decomposition(dec);
    return dec;
}

}  // namespace asilkit::ftree

#include "explore/mapping_opt.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "model/blocks.h"

namespace asilkit::explore {
namespace {

/// Replaces the mappings of `group` (all of kind `node_kind`) with one
/// shared resource; erases dedicated resources that become unused.
void share_group(ArchitectureModel& m, const std::vector<NodeId>& group, NodeKind node_kind,
                 const std::string& shared_name, MappingOptimizeResult& result) {
    if (group.size() < 2) return;

    Asil required = Asil::QM;
    LocationId loc;
    std::vector<ResourceId> old_resources;
    for (NodeId n : group) {
        required = asil_max(required, m.app().node(n).asil.level);
        for (ResourceId r : m.mapped_resources(n)) {
            old_resources.push_back(r);
            if (!loc.valid()) {
                const auto& ps = m.resource_locations(r);
                if (!ps.empty()) loc = ps.front();
            }
        }
    }

    Resource shared;
    shared.name = shared_name;
    shared.kind = default_resource_kind(node_kind);
    shared.asil = required;
    const ResourceId shared_id = m.add_resource(shared);
    if (loc.valid()) m.place_resource(shared_id, loc);

    for (NodeId n : group) m.remap_node(n, {shared_id});
    for (ResourceId r : old_resources) {
        if (m.resources().contains(r) && m.nodes_on_resource(r).empty()) m.erase_resource(r);
    }
    ++result.groups_merged;
}

void optimize_region(ArchitectureModel& m, const std::vector<NodeId>& region,
                     const std::string& tag, MappingOptimizeResult& result) {
    std::vector<NodeId> functional;
    std::vector<NodeId> communication;
    for (NodeId n : region) {
        switch (m.app().node(n).kind) {
            case NodeKind::Functional: functional.push_back(n); break;
            case NodeKind::Communication: communication.push_back(n); break;
            default: break;  // sensors/actuators/splitters/mergers keep dedicated hw
        }
    }
    share_group(m, functional, NodeKind::Functional, "shared_ecu_" + tag, result);
    share_group(m, communication, NodeKind::Communication, "shared_bus_" + tag, result);
}

}  // namespace

MappingOptimizeResult optimize_mapping(ArchitectureModel& m,
                                       const MappingOptimizeOptions& options) {
    MappingOptimizeResult result;
    result.resources_before = m.resources().node_count();

    std::unordered_set<NodeId> in_branch;
    for (const RedundantBlock& block : find_redundant_blocks(m)) {
        if (!block.well_formed) continue;
        const std::string merger_name = m.app().node(block.merger).name;
        for (std::size_t i = 0; i < block.branches.size(); ++i) {
            optimize_region(m, block.branches[i].nodes,
                            merger_name + "_b" + std::to_string(i + 1), result);
            for (NodeId n : block.branches[i].nodes) in_branch.insert(n);
        }
    }

    if (options.include_non_branch_nodes) {
        std::vector<NodeId> rest;
        for (NodeId n : m.app().node_ids()) {
            if (!in_branch.contains(n)) rest.push_back(n);
        }
        optimize_region(m, rest, "trunk", result);
    }

    result.resources_after = m.resources().node_count();
    return result;
}

}  // namespace asilkit::explore

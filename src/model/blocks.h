// Redundant-block detection.
//
// A redundant block is the explicit redundancy pattern of the model: one
// or more splitter nodes replicate data into k parallel branches whose
// results are compared by a single merger node.  Transformations
// (Connect), the fault-tree approximation, and the CCF analysis all need
// to recover this structure from the application graph, so detection
// lives here in the model layer.
//
// Detection is merger-driven: each merger input starts a branch; the
// branch is traced backwards through ordinary nodes until splitter nodes
// are reached (the splitters are the block boundary and are not part of
// any branch).  A well-formed block has node-disjoint branches; overlap is
// reported, not silently accepted, because shared branch nodes invalidate
// the independence required by ASIL decomposition.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/asil.h"
#include "core/ids.h"
#include "model/architecture.h"

namespace asilkit {

/// One parallel branch of a redundant block, in backwards-discovery order
/// (first element is the merger-side node).
struct Branch {
    std::vector<NodeId> nodes;
    /// The splitter nodes this particular branch was traced back to; the
    /// fault-tree approximation wires these directly to the merger input.
    std::vector<NodeId> feeding_splitters;
};

struct RedundantBlock {
    /// Splitter nodes feeding the branches.  Usually one; sensor-fusion
    /// style blocks (Fig. 3) have one (virtual) splitter per fused input.
    std::vector<NodeId> splitters;
    NodeId merger;
    std::vector<Branch> branches;  ///< one per merger input edge
    /// True when every branch terminated at a splitter and the branches
    /// are pairwise node-disjoint.
    bool well_formed = true;
    /// Human-readable reasons when !well_formed.
    std::vector<std::string> issues;
};

/// Finds all redundant blocks in the application graph (one per merger).
[[nodiscard]] std::vector<RedundantBlock> find_redundant_blocks(const ArchitectureModel& m);

/// Detects the block ending at the given merger node.
[[nodiscard]] RedundantBlock find_block_at_merger(const ArchitectureModel& m, NodeId merger);

/// The ASIL credit of one branch: the minimum effective ASIL over its
/// nodes (a chain is only as strong as its weakest element); an empty
/// branch (splitter wired straight to merger) carries the splitter level.
[[nodiscard]] Asil branch_asil(const ArchitectureModel& m, const Branch& b);

/// The ASIL of the whole block, paper Eq. 4:
///   min( min over splitters, saturating-sum over branch ASILs, merger ).
[[nodiscard]] Asil block_asil(const ArchitectureModel& m, const RedundantBlock& block);

std::ostream& operator<<(std::ostream& os, const RedundantBlock& b);

}  // namespace asilkit

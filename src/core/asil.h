// Automotive Safety Integrity Level (ASIL) algebra.
//
// ISO 26262 classifies hazards into five levels: QM (lowest, "Quality
// Management", no safety requirement) through ASIL D (highest).  The paper
// treats the levels as a small ordered algebra: levels can be compared,
// take minima (Eq. 3: effective ASIL of a mapped node), and summed
// (Eq. 4: the ASIL of a redundant block is bounded by the *sum* of the
// branch ASILs, saturating at D).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace asilkit {

/// The five ISO 26262 integrity levels, ordered from least to most critical.
enum class Asil : std::uint8_t {
    QM = 0,  ///< Quality Management: no ASIL requirement.
    A = 1,
    B = 2,
    C = 3,
    D = 4,
};

/// Number of distinct ASIL levels (QM, A, B, C, D).
inline constexpr int kAsilLevelCount = 5;

/// All levels in ascending order, for iteration in tables and tests.
inline constexpr Asil kAllAsilLevels[kAsilLevelCount] = {
    Asil::QM, Asil::A, Asil::B, Asil::C, Asil::D};

/// Numeric weight of a level: QM=0 .. D=4.  This is the quantity that is
/// summed in the ISO 26262 decomposition rule ("ASIL C = ASIL B(C) +
/// ASIL A(C)" because 3 = 2 + 1).
[[nodiscard]] constexpr int asil_value(Asil a) noexcept {
    return static_cast<int>(a);
}

/// Inverse of asil_value(); values outside [0,4] saturate into the range.
[[nodiscard]] constexpr Asil asil_from_value(int v) noexcept {
    if (v <= 0) return Asil::QM;
    if (v >= 4) return Asil::D;
    return static_cast<Asil>(v);
}

[[nodiscard]] constexpr Asil asil_min(Asil a, Asil b) noexcept {
    return asil_value(a) < asil_value(b) ? a : b;
}

[[nodiscard]] constexpr Asil asil_max(Asil a, Asil b) noexcept {
    return asil_value(a) > asil_value(b) ? a : b;
}

/// Saturating sum of two levels: the combined integrity credit of two
/// independent redundant branches (Eq. 4).  QM + X == X; B + B == D.
[[nodiscard]] constexpr Asil asil_sum(Asil a, Asil b) noexcept {
    return asil_from_value(asil_value(a) + asil_value(b));
}

/// Short canonical name: "QM", "A", "B", "C", "D".
[[nodiscard]] std::string_view to_string(Asil a) noexcept;

/// Long name as used in reports: "QM", "ASIL A", ... "ASIL D".
[[nodiscard]] std::string to_long_string(Asil a);

/// Parses "QM"/"A".."D" (case-insensitive, optional "ASIL " prefix).
[[nodiscard]] std::optional<Asil> asil_from_string(std::string_view text) noexcept;

std::ostream& operator<<(std::ostream& os, Asil a);

/// An ASIL requirement with decomposition provenance: ISO 26262 writes a
/// decomposed requirement as "ASIL X(Y)" where X is the level the element
/// is developed to and Y is the level of the original requirement before
/// decomposition.  System-level measures (e.g. the independence analysis)
/// must still be carried out at level Y.
struct AsilTag {
    Asil level = Asil::QM;      ///< X: the decomposed, assigned level.
    Asil inherited = Asil::QM;  ///< Y: the level of the original FSR.

    constexpr AsilTag() = default;

    /// A non-decomposed requirement: X(X).
    constexpr explicit AsilTag(Asil a) : level(a), inherited(a) {}

    constexpr AsilTag(Asil x, Asil y) : level(x), inherited(y) {}

    /// True when this tag is the result of a decomposition (X < Y never
    /// happens the other way: the assigned level cannot exceed the origin).
    [[nodiscard]] constexpr bool is_decomposed() const noexcept {
        return level != inherited;
    }

    friend constexpr bool operator==(const AsilTag&, const AsilTag&) = default;
};

/// Renders "B(D)" for decomposed tags and plain "B" otherwise.
[[nodiscard]] std::string to_string(const AsilTag& tag);

std::ostream& operator<<(std::ostream& os, const AsilTag& tag);

}  // namespace asilkit

# Empty compiler generated dependencies file for ccf_audit.
# This may be replaced when dependencies are built.

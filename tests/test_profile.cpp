// Span-profile aggregation: stack replay from B/E events, self vs total
// time, call edges, folded stacks, unmatched handling, and the
// histogram-estimated percentiles.  Event streams are hand-built so
// every duration is exact.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::obs {
namespace {

TraceEvent ev(char ph, const char* name, std::uint64_t ts_ns, std::uint32_t tid = 1,
              const char* cat = "test") {
    return TraceEvent{name, cat, ts_ns, tid, ph};
}

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
    const std::vector<double> bounds{10.0, 20.0, 30.0};
    // 10 samples in (10,20], none elsewhere: the whole distribution
    // lives in bucket 1, so quantiles interpolate linearly across it.
    const std::vector<std::uint64_t> counts{0, 10, 0, 0};
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 15.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.0), 20.0);
}

TEST(HistogramQuantile, CumulativeAcrossBuckets) {
    const std::vector<double> bounds{10.0, 20.0};
    const std::vector<std::uint64_t> counts{5, 5, 0};
    // rank 7.5 of 10: 5 fill bucket 0, 2.5 into bucket 1's 5 -> 15.
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.75), 15.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.25), 5.0);
}

TEST(HistogramQuantile, OverflowBucketClampsToTopBound) {
    const std::vector<double> bounds{10.0, 20.0};
    const std::vector<std::uint64_t> counts{0, 0, 4};  // all above the top bound
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.99), 20.0);
}

TEST(HistogramQuantile, EmptyAndClampedInputs) {
    const std::vector<double> bounds{10.0};
    const std::vector<std::uint64_t> empty{0, 0};
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, empty, 0.5), 0.0);
    const std::vector<std::uint64_t> some{4, 0};
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, some, -1.0),
                     histogram_quantile(bounds, some, 0.0));
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, some, 2.0),
                     histogram_quantile(bounds, some, 1.0));
}

TEST(Profile, SelfTimeExcludesChildren) {
    const std::vector<TraceEvent> events{
        ev('B', "outer", 0),
        ev('B', "inner", 100),
        ev('E', "inner", 400),
        ev('E', "outer", 1000),
    };
    const SpanProfile profile = build_profile(events);
    ASSERT_EQ(profile.nodes.size(), 2u);
    const SpanProfile::Node* outer = profile.find("outer");
    const SpanProfile::Node* inner = profile.find("inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(outer->total_ns, 1000u);
    EXPECT_EQ(outer->self_ns, 700u);  // 1000 minus the 300 in `inner`
    EXPECT_EQ(inner->total_ns, 300u);
    EXPECT_EQ(inner->self_ns, 300u);
    EXPECT_EQ(outer->min_ns, 1000u);
    EXPECT_EQ(outer->max_ns, 1000u);
    EXPECT_EQ(profile.unmatched, 0u);
}

TEST(Profile, EdgesAggregateParentChildCalls) {
    const std::vector<TraceEvent> events{
        ev('B', "outer", 0),    ev('B', "inner", 10),  ev('E', "inner", 20),
        ev('B', "inner", 30),   ev('E', "inner", 60),  ev('E', "outer", 100),
    };
    const SpanProfile profile = build_profile(events);
    ASSERT_EQ(profile.edges.size(), 1u);
    EXPECT_EQ(profile.edges[0].parent, "outer");
    EXPECT_EQ(profile.edges[0].child, "inner");
    EXPECT_EQ(profile.edges[0].count, 2u);
    EXPECT_EQ(profile.edges[0].total_ns, 40u);  // 10 + 30
    const SpanProfile::Node* inner = profile.find("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->count, 2u);
    EXPECT_EQ(inner->min_ns, 10u);
    EXPECT_EQ(inner->max_ns, 30u);
}

TEST(Profile, FoldedStacksCarrySelfTime) {
    const std::vector<TraceEvent> events{
        ev('B', "a", 0), ev('B', "b", 100), ev('B', "c", 200), ev('E', "c", 300),
        ev('E', "b", 500), ev('E', "a", 1000),
    };
    const SpanProfile profile = build_profile(events);
    ASSERT_EQ(profile.stacks.size(), 3u);  // a, a;b, a;b;c — sorted by path
    EXPECT_EQ(profile.stacks[0].path, "a");
    EXPECT_EQ(profile.stacks[0].self_ns, 600u);
    EXPECT_EQ(profile.stacks[1].path, "a;b");
    EXPECT_EQ(profile.stacks[1].self_ns, 300u);
    EXPECT_EQ(profile.stacks[2].path, "a;b;c");
    EXPECT_EQ(profile.stacks[2].self_ns, 100u);

    const std::string collapsed = profile.to_collapsed();
    EXPECT_NE(collapsed.find("a 600\n"), std::string::npos);
    EXPECT_NE(collapsed.find("a;b 300\n"), std::string::npos);
    EXPECT_NE(collapsed.find("a;b;c 100\n"), std::string::npos);
    // Every folded line is "<path> <integer>".
    std::istringstream lines(collapsed);
    for (std::string line; std::getline(lines, line);) {
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_EQ(line.find_first_not_of("0123456789", space + 1), std::string::npos)
            << line;
    }
}

TEST(Profile, ThreadsReplayIndependently) {
    // Interleaved timestamps across two tids: each tid keeps its own
    // stack, so "work" on tid 2 is NOT a child of "outer" on tid 1.
    const std::vector<TraceEvent> events{
        ev('B', "outer", 0, 1), ev('B', "work", 50, 2), ev('E', "work", 150, 2),
        ev('E', "outer", 200, 1),
    };
    const SpanProfile profile = build_profile(events);
    EXPECT_TRUE(profile.edges.empty());
    const SpanProfile::Node* outer = profile.find("outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->self_ns, 200u);  // nothing subtracted
    ASSERT_EQ(profile.stacks.size(), 2u);
    EXPECT_EQ(profile.stacks[0].path, "outer");
    EXPECT_EQ(profile.stacks[1].path, "work");
}

TEST(Profile, UnmatchedEventsAreCountedNotAttributed) {
    const std::vector<TraceEvent> events{
        ev('E', "orphan_end", 10),               // E with no open span
        ev('B', "still_open", 20),               // B with no E by snapshot time
        ev('B', "closed", 30), ev('E', "closed", 40),
    };
    const SpanProfile profile = build_profile(events);
    EXPECT_EQ(profile.unmatched, 2u);
    EXPECT_EQ(profile.find("orphan_end"), nullptr);
    EXPECT_EQ(profile.find("still_open"), nullptr);
    ASSERT_NE(profile.find("closed"), nullptr);
    EXPECT_EQ(profile.find("closed")->total_ns, 10u);
}

TEST(Profile, InstantEventsAreSkipped) {
    const std::vector<TraceEvent> events{
        ev('B', "outer", 0), ev('I', "marker", 50), ev('E', "outer", 100),
    };
    const SpanProfile profile = build_profile(events);
    EXPECT_EQ(profile.nodes.size(), 1u);
    EXPECT_EQ(profile.unmatched, 0u);
    EXPECT_EQ(profile.find("marker"), nullptr);
}

TEST(Profile, RenderingsAreWellFormed) {
    const std::vector<TraceEvent> events{
        ev('B', "outer", 0), ev('B', "inner", 100), ev('E', "inner", 400),
        ev('E', "outer", 1000),
    };
    const SpanProfile profile = build_profile(events);
    const std::string text = profile.to_text();
    EXPECT_NE(text.find("outer"), std::string::npos);
    EXPECT_NE(text.find("inner"), std::string::npos);
    const std::string json = profile.to_json();
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_NE(json.find("\"edges\""), std::string::npos);
    EXPECT_NE(json.find("\"stacks\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
}

TEST(Profile, CurrentTraceDoesNotConsumeBuffers) {
    start_tracing();
    {
        const ObsSpan outer("profile_outer", "test");
        const ObsSpan inner("profile_inner", "test");
    }
    stop_tracing();
    const SpanProfile profile = profile_current_trace();
    EXPECT_NE(profile.find("profile_outer"), nullptr);
    EXPECT_NE(profile.find("profile_inner"), nullptr);
    // The Perfetto export still sees everything afterwards.
    EXPECT_EQ(trace_event_count(), 4u);
    const std::string json = trace_to_json();  // drains
    EXPECT_NE(json.find("profile_outer"), std::string::npos);
}

}  // namespace
}  // namespace asilkit::obs

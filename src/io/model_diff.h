// Structural diff between two architecture models.
//
// Transformations and CLI steps produce model files; the diff answers
// "what did this step actually change" in review-friendly terms, matching
// elements by name (ids are not stable across serialization).  Used by
// the CLI's `diff` command and by tests that pin down a transformation's
// exact footprint.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/architecture.h"

namespace asilkit::io {

struct ModelDiff {
    std::vector<std::string> added_nodes;
    std::vector<std::string> removed_nodes;
    /// "name: <what changed>" for nodes present on both sides.
    std::vector<std::string> changed_nodes;
    std::vector<std::string> added_resources;
    std::vector<std::string> removed_resources;
    std::vector<std::string> changed_resources;
    std::vector<std::string> added_locations;
    std::vector<std::string> removed_locations;
    /// "from -> to" channel endpoints (by node name).
    std::vector<std::string> added_channels;
    std::vector<std::string> removed_channels;

    [[nodiscard]] bool empty() const noexcept;
    [[nodiscard]] std::size_t total_changes() const noexcept;
};

std::ostream& operator<<(std::ostream& os, const ModelDiff& diff);

[[nodiscard]] ModelDiff diff_models(const ArchitectureModel& before,
                                    const ArchitectureModel& after);

}  // namespace asilkit::io

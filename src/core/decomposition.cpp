#include "core/decomposition.h"

#include <algorithm>
#include <array>
#include <ostream>
#include <stdexcept>

namespace asilkit {
namespace {

// Canonical catalogue, left >= right (paper Fig. 2).
constexpr std::array<DecompositionPattern, 8> kCatalogue = {{
    {Asil::D, Asil::C, Asil::A},
    {Asil::D, Asil::B, Asil::B},
    {Asil::D, Asil::D, Asil::QM},
    {Asil::C, Asil::B, Asil::A},
    {Asil::C, Asil::C, Asil::QM},
    {Asil::B, Asil::A, Asil::A},
    {Asil::B, Asil::B, Asil::QM},
    {Asil::A, Asil::A, Asil::QM},
}};

}  // namespace

std::ostream& operator<<(std::ostream& os, const DecompositionPattern& p) {
    return os << to_string(p.parent) << " -> " << to_string(p.left) << "(" << to_string(p.parent)
              << ") + " << to_string(p.right) << "(" << to_string(p.parent) << ")";
}

std::string to_string(const DecompositionPattern& p) {
    std::string out{to_string(p.parent)};
    out += " -> ";
    out += to_string(p.left);
    out += "(";
    out += to_string(p.parent);
    out += ") + ";
    out += to_string(p.right);
    out += "(";
    out += to_string(p.parent);
    out += ")";
    return out;
}

std::span<const DecompositionPattern> all_decomposition_patterns() noexcept {
    return kCatalogue;
}

std::vector<DecompositionPattern> decompositions_of(Asil parent) {
    std::vector<DecompositionPattern> out;
    for (const auto& p : kCatalogue) {
        if (p.parent == parent) out.push_back(p);
    }
    return out;
}

bool is_valid_decomposition(Asil parent, Asil left, Asil right) noexcept {
    const Asil hi = asil_max(left, right);
    const Asil lo = asil_min(left, right);
    return std::ranges::any_of(kCatalogue, [&](const DecompositionPattern& p) {
        return p.parent == parent && p.left == hi && p.right == lo;
    });
}

bool is_valid_decomposition(Asil parent, std::span<const Asil> branches) noexcept {
    if (branches.empty()) return false;
    if (branches.size() == 1) return branches[0] == parent;
    // Repeated application of the two-way catalogue is equivalent to the
    // saturating-sum rule: the integrity credits of the branches must add
    // up to at least the parent's.  (Every catalogue pattern satisfies
    // value(left)+value(right) >= value(parent), and conversely any split
    // with a sufficient sum can be reached by decomposing the larger side
    // first.)  One subtlety: a branch set of all-QM sums to 0 and is only
    // valid for parent QM, which the sum rule already encodes.
    int sum = 0;
    for (Asil b : branches) sum += asil_value(b);
    return sum >= asil_value(parent);
}

std::string_view to_string(DecompositionStrategy s) noexcept {
    switch (s) {
        case DecompositionStrategy::BB: return "BB";
        case DecompositionStrategy::AC: return "AC";
        case DecompositionStrategy::RND: return "RND";
    }
    return "?";
}

DecompositionPattern select_pattern(Asil parent, DecompositionStrategy strategy,
                                    double rng_draw) {
    if (parent == Asil::QM) {
        throw std::invalid_argument("select_pattern: QM requirements cannot be decomposed");
    }
    switch (strategy) {
        case DecompositionStrategy::BB:
            switch (parent) {
                case Asil::D: return {Asil::D, Asil::B, Asil::B};
                case Asil::C: return {Asil::C, Asil::B, Asil::A};
                case Asil::B: return {Asil::B, Asil::A, Asil::A};
                case Asil::A: return {Asil::A, Asil::A, Asil::QM};
                case Asil::QM: break;
            }
            break;
        case DecompositionStrategy::AC:
            switch (parent) {
                case Asil::D: return {Asil::D, Asil::C, Asil::A};
                case Asil::C: return {Asil::C, Asil::C, Asil::QM};
                case Asil::B: return {Asil::B, Asil::B, Asil::QM};
                case Asil::A: return {Asil::A, Asil::A, Asil::QM};
                case Asil::QM: break;
            }
            break;
        case DecompositionStrategy::RND: {
            // "RND" in the paper alternates between the proper redundant
            // patterns (e.g. D -> B+B or A+C); the trivial X+QM split is
            // excluded when a proper pattern exists because it does not
            // actually lower the required level of both sides.
            std::vector<DecompositionPattern> candidates;
            for (const auto& p : decompositions_of(parent)) {
                if (p.right != Asil::QM || p.parent == Asil::A) candidates.push_back(p);
            }
            if (candidates.empty()) candidates = decompositions_of(parent);
            double clamped = std::clamp(rng_draw, 0.0, 0.999999);
            auto idx = static_cast<std::size_t>(clamped * static_cast<double>(candidates.size()));
            return candidates[idx];
        }
    }
    throw std::invalid_argument("select_pattern: unsupported parent/strategy combination");
}

}  // namespace asilkit

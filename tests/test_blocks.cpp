#include "model/blocks.h"

#include <gtest/gtest.h>

#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit {
namespace {

TEST(Blocks, NoMergersNoBlocks) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    EXPECT_TRUE(find_redundant_blocks(m).empty());
}

TEST(Blocks, Fig3BlockIsDetected) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    const RedundantBlock& block = blocks.front();
    EXPECT_TRUE(block.well_formed) << (block.issues.empty() ? "" : block.issues.front());
    EXPECT_EQ(block.merger, m.find_app_node("merge_dfus"));
    EXPECT_EQ(block.splitters.size(), 2u);  // split_cam + split_gps
    ASSERT_EQ(block.branches.size(), 2u);
    // Each branch: com_a, dfus, c_cam, c_gps.
    EXPECT_EQ(block.branches[0].nodes.size(), 4u);
    EXPECT_EQ(block.branches[1].nodes.size(), 4u);
    // Both branches are fed by both virtual splitters.
    EXPECT_EQ(block.branches[0].feeding_splitters.size(), 2u);
    EXPECT_EQ(block.branches[1].feeding_splitters.size(), 2u);
}

TEST(Blocks, BranchAsilIsWeakestNode) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    for (const Branch& b : blocks.front().branches) {
        EXPECT_EQ(branch_asil(m, b), Asil::B);
    }
}

TEST(Blocks, BlockAsilFollowsEq4) {
    // min(splitters, sum of branches, merger) = min(D, B+B=D, D) = D.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(block_asil(m, blocks.front()), Asil::D);
}

TEST(Blocks, BlockAsilBoundedByMerger) {
    ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    // Degrade the merger's hardware: the whole block degrades (Eq. 4).
    const NodeId merger = m.find_app_node("merge_dfus");
    m.resources().node(m.mapped_resources(merger).front()).asil = Asil::A;
    const auto blocks = find_redundant_blocks(m);
    EXPECT_EQ(block_asil(m, blocks.front()), Asil::A);
}

TEST(Blocks, BlockAsilBoundedByBranchSum) {
    ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    // Degrade one branch ECU to A: sum becomes B + A = C.
    const NodeId dfus2 = m.find_app_node("dfus_2");
    m.resources().node(m.mapped_resources(dfus2).front()).asil = Asil::A;
    const auto blocks = find_redundant_blocks(m);
    EXPECT_EQ(block_asil(m, blocks.front()), Asil::C);
}

TEST(Blocks, ExpansionProducesWellFormedBlock) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_TRUE(blocks.front().well_formed);
    EXPECT_EQ(blocks.front().splitters.size(), 1u);
    EXPECT_EQ(blocks.front().branches.size(), 2u);
    // Branch: c_in + replica + c_out.
    EXPECT_EQ(blocks.front().branches[0].nodes.size(), 3u);
}

TEST(Blocks, SharedBranchNodeIsIllFormed) {
    // A node wired into both merger inputs breaks disjointness.
    ArchitectureModel m("overlap");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    auto add = [&](const char* name, NodeKind kind) {
        return m.add_node_with_dedicated_resource({name, kind, AsilTag{Asil::B}, {}}, loc);
    };
    const NodeId sens = add("sens", NodeKind::Sensor);
    const NodeId split = add("split", NodeKind::Splitter);
    const NodeId shared = add("shared", NodeKind::Functional);
    const NodeId merge = add("merge", NodeKind::Merger);
    const NodeId act = add("act", NodeKind::Actuator);
    m.connect_app(sens, split);
    m.connect_app(split, shared);
    m.connect_app(split, shared);
    m.connect_app(shared, merge);
    m.connect_app(shared, merge);
    m.connect_app(merge, act);
    const auto block = find_block_at_merger(m, merge);
    EXPECT_FALSE(block.well_formed);
}

TEST(Blocks, FindBlockAtNonMergerIsIllFormed) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const auto block = find_block_at_merger(m, m.find_app_node("n"));
    EXPECT_FALSE(block.well_formed);
}

TEST(Blocks, NestedMergerEndsBranch) {
    // block2's branches contain block1's merger as a unit, not its inside.
    ArchitectureModel m = scenarios::chain_two_stages();
    transform::expand(m, m.find_app_node("n1"));
    transform::expand(m, m.find_app_node("n2"));
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 2u);
    for (const auto& block : blocks) {
        EXPECT_TRUE(block.well_formed);
    }
}

TEST(Blocks, EmptyBranchCarriesNeutralAsil) {
    const ArchitectureModel m("x");
    EXPECT_EQ(branch_asil(m, Branch{}), Asil::D);
}

}  // namespace
}  // namespace asilkit

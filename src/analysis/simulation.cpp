#include "analysis/simulation.h"

#include "analysis/sim_engine.h"
#include "ftree/builder.h"

namespace asilkit::analysis {

SimulationResult simulate_fault_tree(const ftree::FaultTree& ft,
                                     const SimulationOptions& options) {
    if (!ft.has_top()) throw AnalysisError("simulate_fault_tree: fault tree has no top event");
    // One-shot convenience: the evaluation plan (topological gate order,
    // flattened children, rates) is compiled here and discarded.  Repeat
    // callers — benches, the CLI's multi-run mode, future dynamic-gate
    // fallbacks — should hold a SimEngine and amortize the plan.
    return SimEngine(ft).run(options);
}

SimulationResult simulate_failure_probability(const ArchitectureModel& m,
                                              const SimulationOptions& options) {
    ftree::FtBuildOptions build_options;
    build_options.include_location_events = options.include_location_events;
    build_options.rates = options.rates;
    const ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);
    return simulate_fault_tree(built.tree, options);
}

}  // namespace asilkit::analysis

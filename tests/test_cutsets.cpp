#include "analysis/cutsets.h"

#include <gtest/gtest.h>

#include "ftree/builder.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"

namespace asilkit::analysis {
namespace {

using ftree::FaultTree;
using ftree::GateKind;

TEST(CutSets, SingleEvent) {
    FaultTree ft;
    ft.set_top(ft.add_basic_event("e", 1e-6));
    const auto sets = minimal_cut_sets(ft);
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_EQ(sets[0], (CutSet{0}));
}

TEST(CutSets, OrGateGivesSingletons) {
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 1e-6);
    const auto b = ft.add_basic_event("b", 1e-6);
    ft.set_top(ft.add_gate("top", GateKind::Or, {a, b}));
    const auto sets = minimal_cut_sets(ft);
    EXPECT_EQ(sets, (std::vector<CutSet>{{0}, {1}}));
}

TEST(CutSets, AndGateGivesPair) {
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 1e-6);
    const auto b = ft.add_basic_event("b", 1e-6);
    ft.set_top(ft.add_gate("top", GateKind::And, {a, b}));
    const auto sets = minimal_cut_sets(ft);
    EXPECT_EQ(sets, (std::vector<CutSet>{{0, 1}}));
}

TEST(CutSets, MinimalityEnforced) {
    // top = a | (a & b): {a} subsumes {a,b}.
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 1e-6);
    const auto b = ft.add_basic_event("b", 1e-6);
    const auto ab = ft.add_gate("ab", GateKind::And, {a, b});
    ft.set_top(ft.add_gate("top", GateKind::Or, {a, ab}));
    const auto sets = minimal_cut_sets(ft);
    EXPECT_EQ(sets, (std::vector<CutSet>{{0}}));
}

TEST(CutSets, RepeatedEventInAndCollapses) {
    // a & a == a.
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 1e-6);
    ft.set_top(ft.add_gate("top", GateKind::And, {a, a}));
    const auto sets = minimal_cut_sets(ft);
    EXPECT_EQ(sets, (std::vector<CutSet>{{0}}));
}

TEST(CutSets, OrderLimitDropsLargeSets) {
    FaultTree ft;
    std::vector<ftree::FtRef> events;
    for (int i = 0; i < 5; ++i) {
        events.push_back(ft.add_basic_event("e" + std::to_string(i), 1e-6));
    }
    const auto big_and = ft.add_gate("big", GateKind::And, events);
    const auto single = ft.add_basic_event("single", 1e-6);
    ft.set_top(ft.add_gate("top", GateKind::Or, {big_and, single}));
    CutSetOptions options;
    options.max_order = 3;
    const auto sets = minimal_cut_sets(ft, options);
    EXPECT_EQ(sets.size(), 1u);  // only {single}; the 5-way set is dropped
    EXPECT_EQ(sets[0].size(), 1u);
}

TEST(CutSets, Fig3StructureIsCorrect) {
    // Series events are order-1 cut sets; the redundant branches appear
    // only as order-2 pairs crossing the two branches.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto ft = ftree::build_fault_tree(m);
    CutSetOptions options;
    options.max_order = 2;
    const auto sets = minimal_cut_sets(ft.tree, options);
    EXPECT_EQ(minimal_cut_order(sets), 1u);

    auto has_single = [&](const std::string& name) {
        const auto ref = ft.tree.find_basic_event(name);
        return std::find(sets.begin(), sets.end(), CutSet{ref.index}) != sets.end();
    };
    EXPECT_TRUE(has_single("res:camera_hw"));
    EXPECT_TRUE(has_single("res:gps_hw"));
    EXPECT_TRUE(has_single("res:steering_hw"));
    // Branch hardware must NOT be a single point of failure.
    EXPECT_FALSE(has_single("res:ecu1"));
    EXPECT_FALSE(has_single("res:ecu2"));
    // ... but the cross-branch pair is a cut set.
    const auto e1 = ft.tree.find_basic_event("res:ecu1").index;
    const auto e2 = ft.tree.find_basic_event("res:ecu2").index;
    CutSet pair{e1, e2};
    std::sort(pair.begin(), pair.end());
    EXPECT_NE(std::find(sets.begin(), sets.end(), pair), sets.end());
}

TEST(CutSets, SharedEcuCreatesSinglePointOfFailure) {
    const ArchitectureModel m = scenarios::fig3_with_shared_ecu_ccf();
    const auto ft = ftree::build_fault_tree(m);
    CutSetOptions options;
    options.max_order = 1;
    const auto sets = minimal_cut_sets(ft.tree, options);
    const auto ecu1 = ft.tree.find_basic_event("res:ecu1").index;
    EXPECT_NE(std::find(sets.begin(), sets.end(), CutSet{ecu1}), sets.end())
        << "shared ECU must surface as an order-1 cut set";
}

TEST(CutSets, ProbabilityBoundApproximatesExact) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto ft = ftree::build_fault_tree(m);
    const auto sets = minimal_cut_sets(ft.tree, {3, 200000});
    const double bound = cut_set_probability_bound(ft.tree, sets);
    const double p = 2.08e-7;
    EXPECT_GT(bound, 0.9 * p);
    EXPECT_LT(bound, 1.2 * p);
}

TEST(CutSets, ProbabilityBoundIsClampedToOne) {
    FaultTree ft;
    const auto a = ft.add_basic_event("a", 100.0);  // p ~ 1
    const auto b = ft.add_basic_event("b", 100.0);
    ft.set_top(ft.add_gate("top", GateKind::Or, {a, b}));
    const auto sets = minimal_cut_sets(ft);
    EXPECT_DOUBLE_EQ(cut_set_probability_bound(ft, sets), 1.0);
}

TEST(CutSets, MinimalOrderOfEmptyIsZero) {
    EXPECT_EQ(minimal_cut_order({}), 0u);
}

TEST(CutSets, SetLimitThrows) {
    // A wide OR of ANDs explodes; the guard must fire rather than hang.
    FaultTree ft;
    std::vector<ftree::FtRef> ors;
    for (int g = 0; g < 12; ++g) {
        std::vector<ftree::FtRef> leaves;
        for (int i = 0; i < 4; ++i) {
            leaves.push_back(
                ft.add_basic_event("e" + std::to_string(g) + "_" + std::to_string(i), 1e-6));
        }
        ors.push_back(ft.add_gate("or" + std::to_string(g), GateKind::Or, leaves));
    }
    ft.set_top(ft.add_gate("top", GateKind::And, ors));
    CutSetOptions options;
    options.max_order = 12;
    options.max_sets = 1000;
    EXPECT_THROW((void)minimal_cut_sets(ft, options), AnalysisError);
}

}  // namespace
}  // namespace asilkit::analysis

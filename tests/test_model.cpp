#include "model/architecture.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "model/failure_rates.h"

namespace asilkit {
namespace {

class ModelTest : public ::testing::Test {
protected:
    ArchitectureModel m{"test"};
    LocationId front = m.add_location({"front", kDefaultLocationLambda, {}});
    LocationId rear = m.add_location({"rear", kDefaultLocationLambda, {}});
};

TEST_F(ModelTest, NameRoundTrip) {
    EXPECT_EQ(m.name(), "test");
    m.set_name("other");
    EXPECT_EQ(m.name(), "other");
}

TEST_F(ModelTest, MapNodeRequiresCompatibleKinds) {
    const NodeId sensor = m.add_app_node({"cam", NodeKind::Sensor, AsilTag{Asil::B}, {}});
    const ResourceId ecu = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    EXPECT_THROW((void)m.map_node(sensor, ecu), ModelError);
    const ResourceId cam_hw = m.add_resource({"cam_hw", ResourceKind::Sensor, Asil::B, {}, {}});
    EXPECT_NO_THROW((void)m.map_node(sensor, cam_hw));
    EXPECT_EQ(m.mapped_resources(sensor).size(), 1u);
}

TEST_F(ModelTest, SplitterMayRunOnSwitchHardware) {
    // The Fig. 3 example implements splitters/mergers in Ethernet switches.
    const NodeId split = m.add_app_node({"split", NodeKind::Splitter, AsilTag{Asil::D}, {}});
    const ResourceId sw = m.add_resource({"switch", ResourceKind::Communication, Asil::D, {}, {}});
    EXPECT_NO_THROW((void)m.map_node(split, sw));
    const NodeId merge = m.add_app_node({"merge", NodeKind::Merger, AsilTag{Asil::D}, {}});
    const ResourceId ecu = m.add_resource({"ecu", ResourceKind::Functional, Asil::D, {}, {}});
    EXPECT_NO_THROW((void)m.map_node(merge, ecu));
}

TEST_F(ModelTest, MapNodeIsIdempotent) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId ecu = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    m.map_node(f, ecu);
    m.map_node(f, ecu);
    EXPECT_EQ(m.mapped_resources(f).size(), 1u);
}

TEST_F(ModelTest, UnmapAndRemap) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId e1 = m.add_resource({"e1", ResourceKind::Functional, Asil::B, {}, {}});
    const ResourceId e2 = m.add_resource({"e2", ResourceKind::Functional, Asil::C, {}, {}});
    m.map_node(f, e1);
    m.remap_node(f, {e2});
    EXPECT_EQ(m.mapped_resources(f), (std::vector<ResourceId>{e2}));
    m.unmap_node(f, e2);
    EXPECT_TRUE(m.mapped_resources(f).empty());
    EXPECT_NO_THROW((void)m.unmap_node(f, e1));  // absent: no-op
}

TEST_F(ModelTest, EffectiveAsilIsEq3) {
    // ASIL(node) = min(A(node), A(MapG(node))).
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::D}, {}});
    EXPECT_EQ(m.effective_asil(f), Asil::QM);  // unmapped: no implementation
    const ResourceId ecu_b = m.add_resource({"ecu_b", ResourceKind::Functional, Asil::B, {}, {}});
    m.map_node(f, ecu_b);
    EXPECT_EQ(m.effective_asil(f), Asil::B);  // hardware limits
    const NodeId g = m.add_app_node({"g", NodeKind::Functional, AsilTag{Asil::A}, {}});
    const ResourceId ecu_d = m.add_resource({"ecu_d", ResourceKind::Functional, Asil::D, {}, {}});
    m.map_node(g, ecu_d);
    EXPECT_EQ(m.effective_asil(g), Asil::A);  // requirement limits
}

TEST_F(ModelTest, EffectiveAsilUsesWeakestResource) {
    const NodeId f = m.add_app_node({"f", NodeKind::Communication, AsilTag{Asil::D}, {}});
    const ResourceId bus_d = m.add_resource({"bus_d", ResourceKind::Communication, Asil::D, {}, {}});
    const ResourceId bus_a = m.add_resource({"bus_a", ResourceKind::Communication, Asil::A, {}, {}});
    m.map_node(f, bus_d);
    m.map_node(f, bus_a);
    EXPECT_EQ(m.effective_asil(f), Asil::A);
}

TEST_F(ModelTest, DedicatedResourceHelper) {
    const NodeId n = m.add_node_with_dedicated_resource(
        {"ctrl", NodeKind::Functional, AsilTag{Asil::C}, {}}, front);
    ASSERT_EQ(m.mapped_resources(n).size(), 1u);
    const Resource& res = m.resources().node(m.mapped_resources(n).front());
    EXPECT_EQ(res.name, "ctrl_hw");
    EXPECT_EQ(res.kind, ResourceKind::Functional);
    EXPECT_EQ(res.asil, Asil::C);
    EXPECT_EQ(m.node_locations(n), (std::vector<LocationId>{front}));
}

TEST_F(ModelTest, ResourceLambdaFollowsTable1) {
    const ResourceId ecu = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    EXPECT_DOUBLE_EQ(m.resource_lambda(ecu), 1e-7);
    const ResourceId split = m.add_resource({"sp", ResourceKind::Splitter, Asil::B, {}, {}});
    EXPECT_DOUBLE_EQ(m.resource_lambda(split), 1e-8);  // one decade better
    const ResourceId sensor_qm = m.add_resource({"s", ResourceKind::Sensor, Asil::QM, {}, {}});
    EXPECT_DOUBLE_EQ(m.resource_lambda(sensor_qm), 1e-5);
}

TEST_F(ModelTest, ResourceLambdaHonoursOverride) {
    const ResourceId ecu = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, 4.2e-9, {}});
    EXPECT_DOUBLE_EQ(m.resource_lambda(ecu), 4.2e-9);
}

TEST_F(ModelTest, NodesOnResourceAndUsedResources) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const NodeId g = m.add_app_node({"g", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId shared = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    const ResourceId spare = m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    m.map_node(f, shared);
    m.map_node(g, shared);
    EXPECT_EQ(m.nodes_on_resource(shared).size(), 2u);
    EXPECT_TRUE(m.nodes_on_resource(spare).empty());
    EXPECT_EQ(m.used_resources(), (std::vector<ResourceId>{shared}));
}

TEST_F(ModelTest, EraseAppNodeDropsDedicatedResources) {
    const NodeId n =
        m.add_node_with_dedicated_resource({"f", NodeKind::Functional, AsilTag{Asil::B}, {}}, front);
    const ResourceId r = m.mapped_resources(n).front();
    m.erase_app_node(n, /*drop_dedicated_resources=*/true);
    EXPECT_FALSE(m.resources().contains(r));
    EXPECT_FALSE(m.app().contains(n));
}

TEST_F(ModelTest, EraseAppNodeKeepsSharedResources) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const NodeId g = m.add_app_node({"g", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId shared = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    m.map_node(f, shared);
    m.map_node(g, shared);
    m.erase_app_node(f, /*drop_dedicated_resources=*/true);
    EXPECT_TRUE(m.resources().contains(shared));
    EXPECT_EQ(m.nodes_on_resource(shared), (std::vector<NodeId>{g}));
}

TEST_F(ModelTest, EraseResourceCleansMappings) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId r = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    m.map_node(f, r);
    m.place_resource(r, front);
    m.erase_resource(r);
    EXPECT_TRUE(m.mapped_resources(f).empty());
    EXPECT_FALSE(m.resources().contains(r));
}

TEST_F(ModelTest, PlacementAndNodeLocations) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId r = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    m.map_node(f, r);
    m.place_resource(r, front);
    m.place_resource(r, rear);
    m.place_resource(r, front);  // idempotent
    EXPECT_EQ(m.resource_locations(r).size(), 2u);
    EXPECT_EQ(m.node_locations(f).size(), 2u);
}

TEST_F(ModelTest, FindByName) {
    const NodeId f = m.add_app_node({"f", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const ResourceId r = m.add_resource({"ecu", ResourceKind::Functional, Asil::B, {}, {}});
    EXPECT_EQ(m.find_app_node("f"), f);
    EXPECT_FALSE(m.find_app_node("nope").valid());
    EXPECT_EQ(m.find_resource("ecu"), r);
    EXPECT_EQ(m.find_location("front"), front);
    EXPECT_FALSE(m.find_location("nowhere").valid());
}

TEST(FailureRates, Table1Values) {
    const FailureRates rates = FailureRates::table1();
    EXPECT_DOUBLE_EQ(rates.rate(ResourceKind::Functional, Asil::QM), 1e-5);
    EXPECT_DOUBLE_EQ(rates.rate(ResourceKind::Functional, Asil::D), 1e-9);
    EXPECT_DOUBLE_EQ(rates.rate(ResourceKind::Splitter, Asil::QM), 1e-6);
    EXPECT_DOUBLE_EQ(rates.rate(ResourceKind::Merger, Asil::D), 1e-10);
    EXPECT_DOUBLE_EQ(rates.location_rate(), 1e-11);
}

TEST(FailureRates, EveryLevelIsOneDecade) {
    const FailureRates rates;
    for (ResourceKind kind : kAllResourceKinds) {
        for (int level = 1; level < kAsilLevelCount; ++level) {
            const double upper = rates.rate(kind, static_cast<Asil>(level - 1));
            const double lower = rates.rate(kind, static_cast<Asil>(level));
            EXPECT_NEAR(upper / lower, 10.0, 1e-9);
        }
    }
}

TEST(FailureRates, Customisable) {
    FailureRates rates;
    rates.set_rate(ResourceKind::Sensor, Asil::B, 3e-8);
    EXPECT_DOUBLE_EQ(rates.rate(ResourceKind::Sensor, Asil::B), 3e-8);
    rates.set_location_rate(5e-12);
    EXPECT_DOUBLE_EQ(rates.location_rate(), 5e-12);
}

TEST(FailureRates, ResourceRateHonoursOverride) {
    const FailureRates rates;
    Resource r{"x", ResourceKind::Functional, Asil::D, {}, {}};
    EXPECT_DOUBLE_EQ(rates.resource_rate(r), 1e-9);
    r.lambda_override = 7e-8;
    EXPECT_DOUBLE_EQ(rates.resource_rate(r), 7e-8);
}

}  // namespace
}  // namespace asilkit

file(REMOVE_RECURSE
  "libasilkit_model.a"
)

#include "engine/eval_cache.h"

namespace asilkit::engine {

EvalCache::EvalCache(std::size_t capacity)
    : capacity_(capacity),
      hits_(obs::Registry::global().counter("engine.cache.hits")),
      misses_(obs::Registry::global().counter("engine.cache.misses")),
      evictions_(obs::Registry::global().counter("engine.cache.evictions")),
      hits_base_(hits_.value()),
      misses_base_(misses_.value()),
      evictions_base_(evictions_.value()) {
    map_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::optional<EvalValue> EvalCache::lookup(std::uint64_t key) {
    const core::MutexLock lock(mutex_);
    if (const auto it = map_.find(key); it != map_.end()) {
        hits_.inc();
        return it->second;
    }
    misses_.inc();
    return std::nullopt;
}

void EvalCache::insert(std::uint64_t key, const EvalValue& value) {
    if (capacity_ == 0) return;
    const core::MutexLock lock(mutex_);
    const auto [it, inserted] = map_.insert_or_assign(key, value);
    if (!inserted) return;  // racing re-insert of the same tree
    fifo_.push_back(key);
    while (map_.size() > capacity_) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
        evictions_.inc();
    }
}

EvalCache::Stats EvalCache::stats() const {
    const core::MutexLock lock(mutex_);
    Stats s;
    s.hits = hits_.value() - hits_base_;
    s.misses = misses_.value() - misses_base_;
    s.evictions = evictions_.value() - evictions_base_;
    s.size = map_.size();
    s.capacity = capacity_;
    return s;
}

void EvalCache::clear() {
    const core::MutexLock lock(mutex_);
    map_.clear();
    fifo_.clear();
    // Registry counters are process-global and monotonic; clearing this
    // cache re-anchors its per-instance view instead of zeroing them.
    hits_base_ = hits_.value();
    misses_base_ = misses_.value();
    evictions_base_ = evictions_.value();
}

}  // namespace asilkit::engine

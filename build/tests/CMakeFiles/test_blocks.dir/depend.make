# Empty dependencies file for test_blocks.
# This may be replaced when dependencies are built.

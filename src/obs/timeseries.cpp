#include "obs/timeseries.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/watchdog.h"

namespace asilkit::obs {
namespace {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    for (int precision = 6; precision < 17; ++precision) {
        char trial[40];
        std::snprintf(trial, sizeof(trial), "%.*g", precision, v);
        std::sscanf(trial, "%lf", &parsed);
        if (parsed == v) return trial;
    }
    return buf;
}

}  // namespace

const TimeSeriesSnapshot::Series* TimeSeriesSnapshot::find(
    std::string_view id) const noexcept {
    for (const Series& s : series) {
        if (s.id == id) return &s;
    }
    return nullptr;
}

std::string TimeSeriesSnapshot::to_json() const {
    std::ostringstream os;
    os << "{\"period_ms\":" << period_ms << ",\"capacity\":" << capacity
       << ",\"ticks\":" << ticks << ",\"series\":[";
    for (std::size_t i = 0; i < series.size(); ++i) {
        const Series& s = series[i];
        if (i != 0) os << ",";
        os << "{\"id\":\"" << json_escape(s.id) << "\",\"kind\":\"" << s.kind
           << "\",\"points\":[";
        for (std::size_t p = 0; p < s.points.size(); ++p) {
            if (p != 0) os << ",";
            os << "[" << s.points[p].ts_ns << "," << number(s.points[p].value) << "]";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

TimeSeriesSampler::TimeSeriesSampler(TimeSeriesOptions options)
    : options_([&options] {
          if (options.capacity == 0) options.capacity = 1;  // a ring needs a slot
          return std::move(options);
      }()),
      epoch_(std::chrono::steady_clock::now()) {}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::attach_watchdog(Watchdog* watchdog) {
    const core::MutexLock lock(data_mutex_);
    watchdog_ = watchdog;
}

void TimeSeriesSampler::start() {
    const core::MutexLock lock(mutex_);
    if (worker_.joinable()) return;
    stop_requested_ = false;
    worker_ = std::thread([this] { run(); });
}

void TimeSeriesSampler::stop() {
    std::thread worker;
    {
        const core::MutexLock lock(mutex_);
        stop_requested_ = true;
        worker = std::move(worker_);
    }
    cv_.notify_all();
    if (worker.joinable()) worker.join();
}

bool TimeSeriesSampler::running() const {
    const core::MutexLock lock(mutex_);
    return worker_.joinable();
}

void TimeSeriesSampler::run() {
    tick();  // immediate first sample: short runs still get a point
    for (;;) {
        {
            const core::MutexLock lock(mutex_);
            if (stop_requested_) return;
            // A notification means stop; a timeout (or spurious wake)
            // means this tick is due — at worst slightly early, which
            // telemetry tolerates.
            (void)cv_.wait_for(mutex_, options_.period);
            if (stop_requested_) return;
        }
        tick();
    }
}

void TimeSeriesSampler::sample_now() { tick(); }

void TimeSeriesSampler::push_point(const std::string& id, const char* kind,
                                   std::uint64_t ts_ns, double value) {
    Ring& ring = series_[id];
    if (ring.points.empty()) ring.kind = kind;
    if (ring.points.size() < options_.capacity) {
        ring.points.push_back({ts_ns, value});
        ring.next = ring.points.size() % options_.capacity;
    } else {
        ring.points[ring.next] = {ts_ns, value};
        ring.next = (ring.next + 1) % options_.capacity;
    }
}

void TimeSeriesSampler::tick() {
    static Counter& ticks_total = Registry::global().counter("obs.sampler.ticks");
    const MetricsSnapshot snap = Registry::global().snapshot();
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t ts_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count());

    Watchdog* watchdog = nullptr;
    {
        const core::MutexLock lock(data_mutex_);
        for (const MetricsSnapshot::CounterSample& c : snap.counters) {
            push_point(c.id, "counter", ts_ns, static_cast<double>(c.value));
        }
        for (const MetricsSnapshot::GaugeSample& g : snap.gauges) {
            push_point(g.id, "gauge", ts_ns, g.value);
        }
        for (const MetricsSnapshot::HistogramSample& h : snap.histograms) {
            push_point(h.id + ".count", "histogram", ts_ns, static_cast<double>(h.count));
            push_point(h.id + ".sum", "histogram", ts_ns, h.sum);
        }
        ++ticks_;
        if (!options_.ndjson_path.empty()) {
            if (!ndjson_.is_open()) {
                ndjson_.open(options_.ndjson_path, std::ios::app);
            }
            if (ndjson_) {
                ndjson_ << "{\"ts_ns\":" << ts_ns << ",\"metrics\":" << snap.to_json()
                        << "}\n";
                ndjson_.flush();  // each line complete on disk: tail -f friendly
            }
        }
        watchdog = watchdog_;
    }
    ticks_total.inc();

    // Sinks that need no ring state run outside the data lock: the
    // exposition rewrite can be slow (disk), and the watchdog takes its
    // own mutex (lock order stays data_mutex_ -> watchdog, never back).
    if (!options_.openmetrics_path.empty()) {
        std::ofstream out(options_.openmetrics_path, std::ios::trunc);
        if (out) out << to_openmetrics(snap);
    }
    if (watchdog != nullptr) watchdog->evaluate(ts_ns, snap);
}

TimeSeriesSnapshot TimeSeriesSampler::snapshot() const {
    TimeSeriesSnapshot out;
    out.period_ms = static_cast<std::uint64_t>(options_.period.count());
    out.capacity = options_.capacity;
    const core::MutexLock lock(data_mutex_);
    out.ticks = ticks_;
    out.series.reserve(series_.size());
    for (const auto& [id, ring] : series_) {
        TimeSeriesSnapshot::Series s;
        s.id = id;
        s.kind = ring.kind;
        s.points.reserve(ring.points.size());
        // Chronological order: the ring wraps at `next`, so the oldest
        // point sits there once the ring is full.
        const std::size_t n = ring.points.size();
        const std::size_t start = n < options_.capacity ? 0 : ring.next;
        for (std::size_t i = 0; i < n; ++i) {
            s.points.push_back(ring.points[(start + i) % n]);
        }
        out.series.push_back(std::move(s));
    }
    return out;
}

std::uint64_t TimeSeriesSampler::ticks() const {
    const core::MutexLock lock(data_mutex_);
    return ticks_;
}

}  // namespace asilkit::obs

#include "io/model_json.h"

#include <gtest/gtest.h>

#include "analysis/probability.h"
#include "cost/cost_analysis.h"
#include "model/validation.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::io {
namespace {

/// Semantic equality: same names/kinds/levels/edges/mappings (ids may be
/// renumbered by the round trip).
void expect_equivalent(const ArchitectureModel& a, const ArchitectureModel& b) {
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.app().node_count(), b.app().node_count());
    ASSERT_EQ(a.app().edge_count(), b.app().edge_count());
    ASSERT_EQ(a.resources().node_count(), b.resources().node_count());
    ASSERT_EQ(a.physical().node_count(), b.physical().node_count());

    for (NodeId na : a.app().node_ids()) {
        const AppNode& node_a = a.app().node(na);
        const NodeId nb = b.find_app_node(node_a.name);
        ASSERT_TRUE(nb.valid()) << node_a.name;
        const AppNode& node_b = b.app().node(nb);
        EXPECT_EQ(node_a.kind, node_b.kind) << node_a.name;
        EXPECT_EQ(node_a.asil, node_b.asil) << node_a.name;
        // Mapped resource names match.
        std::vector<std::string> res_a;
        for (ResourceId r : a.mapped_resources(na)) res_a.push_back(a.resources().node(r).name);
        std::vector<std::string> res_b;
        for (ResourceId r : b.mapped_resources(nb)) res_b.push_back(b.resources().node(r).name);
        std::sort(res_a.begin(), res_a.end());
        std::sort(res_b.begin(), res_b.end());
        EXPECT_EQ(res_a, res_b) << node_a.name;
        // Successor names match.
        std::vector<std::string> succ_a;
        for (NodeId s : a.app().successors(na)) succ_a.push_back(a.app().node(s).name);
        std::vector<std::string> succ_b;
        for (NodeId s : b.app().successors(nb)) succ_b.push_back(b.app().node(s).name);
        std::sort(succ_a.begin(), succ_a.end());
        std::sort(succ_b.begin(), succ_b.end());
        EXPECT_EQ(succ_a, succ_b) << node_a.name;
    }
    for (ResourceId ra : a.resources().node_ids()) {
        const Resource& res_a = a.resources().node(ra);
        const ResourceId rb = b.find_resource(res_a.name);
        ASSERT_TRUE(rb.valid()) << res_a.name;
        const Resource& res_b = b.resources().node(rb);
        EXPECT_EQ(res_a.kind, res_b.kind);
        EXPECT_EQ(res_a.asil, res_b.asil);
        EXPECT_EQ(res_a.lambda_override, res_b.lambda_override);
        EXPECT_EQ(res_a.cost_override, res_b.cost_override);
        std::vector<std::string> loc_a;
        for (LocationId p : a.resource_locations(ra)) loc_a.push_back(a.physical().node(p).name);
        std::vector<std::string> loc_b;
        for (LocationId p : b.resource_locations(rb)) loc_b.push_back(b.physical().node(p).name);
        std::sort(loc_a.begin(), loc_a.end());
        std::sort(loc_b.begin(), loc_b.end());
        EXPECT_EQ(loc_a, loc_b) << res_a.name;
    }
}

TEST(ModelJson, RoundTripChain) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    expect_equivalent(m, model_from_json(to_json(m)));
}

TEST(ModelJson, RoundTripFig3) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    expect_equivalent(m, model_from_json(to_json(m)));
}

TEST(ModelJson, RoundTripEcotwinWithOverrides) {
    // EcoTwin uses lambda/cost overrides (virtual elements) and
    // environments; all must survive.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    expect_equivalent(m, model_from_json(to_json(m)));
}

TEST(ModelJson, RoundTripAfterTransformations) {
    // Erasures leave id holes; the export must renumber densely.
    ArchitectureModel m = scenarios::chain_two_stages();
    transform::expand(m, m.find_app_node("n1"));
    transform::expand(m, m.find_app_node("n2"));
    expect_equivalent(m, model_from_json(to_json(m)));
}

TEST(ModelJson, AnalysesAgreeAfterRoundTrip) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const ArchitectureModel reloaded = model_from_json(to_json(m));
    EXPECT_DOUBLE_EQ(analysis::analyze_failure_probability(m).failure_probability,
                     analysis::analyze_failure_probability(reloaded).failure_probability);
    const auto metric = cost::CostMetric::exponential_metric1();
    EXPECT_DOUBLE_EQ(cost::total_cost(m, metric), cost::total_cost(reloaded, metric));
    EXPECT_EQ(validate(reloaded).error_count(), 0u);
}

TEST(ModelJson, EnvironmentSurvives) {
    ArchitectureModel m("env");
    Environment env;
    env.vibration_zone = 3;
    env.emi_zone = 1;
    m.add_location({"engine_bay", 2e-11, env});
    const ArchitectureModel reloaded = model_from_json(to_json(m));
    const Location& loc = reloaded.physical().node(reloaded.find_location("engine_bay"));
    EXPECT_EQ(loc.env, env);
    EXPECT_DOUBLE_EQ(loc.lambda, 2e-11);
}

TEST(ModelJson, DecomposedTagsSurvive) {
    ArchitectureModel m("tags");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    m.add_node_with_dedicated_resource({"f", NodeKind::Functional, AsilTag{Asil::B, Asil::D}, {}}, loc);
    const ArchitectureModel reloaded = model_from_json(to_json(m));
    const AsilTag tag = reloaded.app().node(reloaded.find_app_node("f")).asil;
    EXPECT_EQ(tag, (AsilTag{Asil::B, Asil::D}));
}

TEST(ModelJson, GraphEdgesInAllLayersSurvive) {
    ArchitectureModel m("layers");
    const LocationId l1 = m.add_location({"l1", kDefaultLocationLambda, {}});
    const LocationId l2 = m.add_location({"l2", kDefaultLocationLambda, {}});
    m.physical().add_edge(l1, l2, {"duct"});
    const ResourceId r1 = m.add_resource({"r1", ResourceKind::Functional, Asil::B, {}, {}});
    const ResourceId r2 = m.add_resource({"r2", ResourceKind::Communication, Asil::B, {}, {}});
    m.resources().add_edge(r1, r2, {"link"});
    const ArchitectureModel reloaded = model_from_json(to_json(m));
    EXPECT_EQ(reloaded.physical().edge_count(), 1u);
    EXPECT_EQ(reloaded.resources().edge_count(), 1u);
    const auto& edge = reloaded.physical().edge(reloaded.physical().edge_ids().front());
    EXPECT_EQ(edge.data.label, "duct");
}

TEST(ModelJson, MalformedDocumentsRejected) {
    EXPECT_THROW((void)model_from_json(Json::parse(R"({"name":"x"})")), IoError);
    EXPECT_THROW(
        model_from_json(Json::parse(
            R"({"name":"x","locations":[],"resources":[{"name":"r","kind":"warp","asil":"B","locations":[]}],"nodes":[],"channels":[]})")),
        IoError);
    EXPECT_THROW(
        model_from_json(Json::parse(
            R"({"name":"x","locations":[],"resources":[],"nodes":[{"name":"n","kind":"functional","asil":"Z","resources":[]}],"channels":[]})")),
        IoError);
}

TEST(ModelJson, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/asilkit_model_test.json";
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    save_model(m, path);
    expect_equivalent(m, load_model(path));
}

}  // namespace
}  // namespace asilkit::io

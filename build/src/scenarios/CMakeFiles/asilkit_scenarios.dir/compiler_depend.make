# Empty compiler generated dependencies file for asilkit_scenarios.
# This may be replaced when dependencies are built.

// Forwarding header: the batch thread pool moved to core/thread_pool.h
// so layers below the engine (analysis::SimEngine fans Monte Carlo
// trial blocks over it) can use it without inverting the layer DAG.
// The engine's public names stay valid.
#pragma once

#include "core/thread_pool.h"

namespace asilkit::engine {

using ThreadPool = core::ThreadPool;
using core::resolve_thread_count;

}  // namespace asilkit::engine

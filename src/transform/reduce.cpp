#include "transform/reduce.h"

#include "core/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::transform {

bool can_reduce(const ArchitectureModel& m, NodeId first, NodeId second) {
    const AppGraph& g = m.app();
    if (!g.contains(first) || !g.contains(second)) return false;
    if (g.node(first).kind != NodeKind::Communication ||
        g.node(second).kind != NodeKind::Communication) {
        return false;
    }
    if (!g.find_edge(first, second).valid()) return false;
    // `first` must feed only `second`, and `second` must be fed only by
    // `first`: both then provably carry the same data.
    return g.out_degree(first) == 1 && g.in_degree(second) == 1;
}

ReduceResult reduce(ArchitectureModel& m, NodeId first, NodeId second) {
    static obs::Counter& ops = obs::Registry::global().counter("transform.reduce.ops");
    ops.inc();
    const obs::ObsSpan span("reduce", "transform");
    if (!can_reduce(m, first, second)) {
        throw TransformError("Reduce: nodes are not a collapsible communication pair");
    }
    AppGraph& g = m.app();
    AppNode& kept = g.node(first);
    const AppNode& gone = g.node(second);
    // The surviving node carries the weaker of the two guarantees.
    if (asil_value(gone.asil.level) < asil_value(kept.asil.level)) {
        kept.asil.level = gone.asil.level;
    }
    kept.asil.inherited = asil_max(kept.asil.inherited, gone.asil.inherited);
    if (kept.fsr.empty()) kept.fsr = gone.fsr;

    for (ChannelId e : g.out_edges(second)) {
        m.connect_app(first, g.edge(e).sink, g.edge(e).data);
    }
    m.erase_app_node(second, /*drop_dedicated_resources=*/true);
    return ReduceResult{first, second};
}

std::size_t reduce_all(ArchitectureModel& m) {
    std::size_t reductions = 0;
    for (;;) {
        bool progressed = false;
        for (NodeId n : m.app().node_ids()) {
            if (m.app().node(n).kind != NodeKind::Communication) continue;
            if (m.app().out_degree(n) != 1) continue;
            const NodeId next = m.app().successors(n).front();
            if (can_reduce(m, n, next)) {
                reduce(m, n, next);
                ++reductions;
                progressed = true;
                break;  // node_ids() snapshot is stale after a mutation
            }
        }
        if (!progressed) return reductions;
    }
}

}  // namespace asilkit::transform

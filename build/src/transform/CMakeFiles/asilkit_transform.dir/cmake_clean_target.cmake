file(REMOVE_RECURSE
  "libasilkit_transform.a"
)

#include "transform/reduce.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "model/validation.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::transform {
namespace {

/// sensor -> c1 -> c2 -> actuator: a directly reducible pair.
ArchitectureModel comm_pair() {
    ArchitectureModel m("comm-pair");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s = m.add_node_with_dedicated_resource(
        {"sens", NodeKind::Sensor, AsilTag{Asil::D}, {}}, loc);
    const NodeId c1 = m.add_node_with_dedicated_resource(
        {"c1", NodeKind::Communication, AsilTag{Asil::D}, {}}, loc);
    const NodeId c2 = m.add_node_with_dedicated_resource(
        {"c2", NodeKind::Communication, AsilTag{Asil::B}, {}}, loc);
    const NodeId a = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s, c1);
    m.connect_app(c1, c2);
    m.connect_app(c2, a);
    return m;
}

TEST(Reduce, CollapsesPair) {
    ArchitectureModel m = comm_pair();
    const NodeId c1 = m.find_app_node("c1");
    const NodeId c2 = m.find_app_node("c2");
    ASSERT_TRUE(can_reduce(m, c1, c2));
    const ReduceResult r = reduce(m, c1, c2);
    EXPECT_EQ(r.kept, c1);
    EXPECT_FALSE(m.find_app_node("c2").valid());
    EXPECT_FALSE(m.find_resource("c2_hw").valid());
    // Edges re-stitched: sensor -> c1 -> actuator.
    EXPECT_EQ(m.app().successors(c1), (std::vector<NodeId>{m.find_app_node("act")}));
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Reduce, SurvivorTakesWeakestAsil) {
    // Paper: "the lowest ASIL value of the two is assigned".
    ArchitectureModel m = comm_pair();  // c1 is D, c2 is B
    reduce(m, m.find_app_node("c1"), m.find_app_node("c2"));
    EXPECT_EQ(m.app().node(m.find_app_node("c1")).asil.level, Asil::B);
}

TEST(Reduce, SurvivorKeepsStrongestInheritance) {
    ArchitectureModel m = comm_pair();
    const NodeId c1 = m.find_app_node("c1");
    const NodeId c2 = m.find_app_node("c2");
    m.app().node(c1).asil = AsilTag{Asil::B, Asil::B};
    m.app().node(c2).asil = AsilTag{Asil::B, Asil::D};  // decomposed from D
    reduce(m, c1, c2);
    EXPECT_EQ(m.app().node(c1).asil.inherited, Asil::D);
}

TEST(Reduce, RefusesNonCommunicationNodes) {
    ArchitectureModel m = comm_pair();
    EXPECT_FALSE(can_reduce(m, m.find_app_node("sens"), m.find_app_node("c1")));
    EXPECT_THROW((void)reduce(m, m.find_app_node("sens"), m.find_app_node("c1")), TransformError);
}

TEST(Reduce, RefusesNonAdjacentNodes) {
    ArchitectureModel m = comm_pair();
    // c2 -> c1 edge does not exist (only c1 -> c2).
    EXPECT_FALSE(can_reduce(m, m.find_app_node("c2"), m.find_app_node("c1")));
}

TEST(Reduce, RefusesWhenFirstHasFanOut) {
    ArchitectureModel m = comm_pair();
    const NodeId c1 = m.find_app_node("c1");
    const NodeId tap = m.add_node_with_dedicated_resource(
        {"tap", NodeKind::Actuator, AsilTag{Asil::QM}, {}}, m.find_location("zone"));
    m.connect_app(c1, tap);
    EXPECT_FALSE(can_reduce(m, c1, m.find_app_node("c2")));
}

TEST(Reduce, RefusesWhenSecondHasFanIn) {
    ArchitectureModel m = comm_pair();
    const NodeId c2 = m.find_app_node("c2");
    const NodeId other = m.add_node_with_dedicated_resource(
        {"other", NodeKind::Sensor, AsilTag{Asil::QM}, {}}, m.find_location("zone"));
    m.connect_app(other, c2);
    EXPECT_FALSE(can_reduce(m, m.find_app_node("c1"), c2));
}

TEST(Reduce, RefusesErasedIds) {
    ArchitectureModel m = comm_pair();
    const NodeId c2 = m.find_app_node("c2");
    reduce(m, m.find_app_node("c1"), c2);
    EXPECT_FALSE(can_reduce(m, m.find_app_node("c1"), c2));
}

TEST(Reduce, ReduceAllCollapsesChains) {
    // A chain of 4 consecutive communication nodes collapses to 1.
    ArchitectureModel m("comm-chain");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s = m.add_node_with_dedicated_resource(
        {"sens", NodeKind::Sensor, AsilTag{Asil::D}, {}}, loc);
    NodeId prev = s;
    for (int i = 0; i < 4; ++i) {
        const NodeId c = m.add_node_with_dedicated_resource(
            {"c" + std::to_string(i), NodeKind::Communication, AsilTag{Asil::D}, {}}, loc);
        m.connect_app(prev, c);
        prev = c;
    }
    const NodeId a = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(prev, a);
    const std::size_t reductions = reduce_all(m);
    EXPECT_EQ(reductions, 3u);
    EXPECT_EQ(m.app().node_count(), 3u);  // sensor, one comm, actuator
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Reduce, ReduceAllCleansExpansionResidue) {
    // Two adjacent COMM expansions leave c_post_x -> c_pre_y between the
    // blocks; reduce_all must collapse exactly those.
    ArchitectureModel m("adjacent-comms");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s = m.add_node_with_dedicated_resource(
        {"sens", NodeKind::Sensor, AsilTag{Asil::D}, {}}, loc);
    const NodeId x = m.add_node_with_dedicated_resource(
        {"x", NodeKind::Communication, AsilTag{Asil::D}, {}}, loc);
    const NodeId y = m.add_node_with_dedicated_resource(
        {"y", NodeKind::Communication, AsilTag{Asil::D}, {}}, loc);
    const NodeId a = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s, x);
    m.connect_app(x, y);
    m.connect_app(y, a);
    expand(m, x);
    expand(m, m.find_app_node("y"));
    const std::size_t before = m.app().node_count();
    const std::size_t reductions = reduce_all(m);
    EXPECT_GE(reductions, 1u);
    EXPECT_LT(m.app().node_count(), before);
    // The boundary pair c_post_x / c_pre_y is gone (one of them survives).
    EXPECT_TRUE(!m.find_app_node("c_post_x").valid() || !m.find_app_node("c_pre_y").valid());
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Reduce, ReduceAllIsIdempotent) {
    ArchitectureModel m = comm_pair();
    EXPECT_EQ(reduce_all(m), 1u);
    EXPECT_EQ(reduce_all(m), 0u);
}

TEST(Reduce, DoesNotTouchBranchInternals) {
    // Inside an expanded FUNCTIONAL block there are no comm-comm pairs;
    // reduce_all on a fresh expansion must be a no-op.
    ArchitectureModel m = scenarios::chain_1in_1out();
    expand(m, m.find_app_node("n"));
    EXPECT_EQ(reduce_all(m), 0u);
}

}  // namespace
}  // namespace asilkit::transform

#include "io/model_json.h"

#include <unordered_map>

#include "obs/trace.h"

namespace asilkit::io {
namespace {

Json env_to_json(const Environment& env) {
    Json j = Json::object();
    j["temperature"] = env.temperature_zone;
    j["vibration"] = env.vibration_zone;
    j["emi"] = env.emi_zone;
    j["water"] = env.water_exposure_zone;
    return j;
}

Environment env_from_json(const Json& j) {
    Environment env;
    if (j.is_null()) return env;
    env.temperature_zone = static_cast<int>(j.get_or_null("temperature").is_null() ? 0 : j.at("temperature").as_int());
    env.vibration_zone = static_cast<int>(j.get_or_null("vibration").is_null() ? 0 : j.at("vibration").as_int());
    env.emi_zone = static_cast<int>(j.get_or_null("emi").is_null() ? 0 : j.at("emi").as_int());
    env.water_exposure_zone = static_cast<int>(j.get_or_null("water").is_null() ? 0 : j.at("water").as_int());
    return env;
}

Asil asil_from_json(const Json& j, const char* context) {
    const auto parsed = asil_from_string(j.as_string());
    if (!parsed) throw IoError(std::string("invalid ASIL '") + j.as_string() + "' in " + context);
    return *parsed;
}

NodeKind node_kind_from_string(const std::string& s) {
    for (NodeKind k : kAllNodeKinds) {
        if (s == to_string(k)) return k;
    }
    throw IoError("invalid node kind '" + s + "'");
}

ResourceKind resource_kind_from_string(const std::string& s) {
    for (ResourceKind k : kAllResourceKinds) {
        if (s == to_string(k)) return k;
    }
    throw IoError("invalid resource kind '" + s + "'");
}

}  // namespace

Json to_json(const ArchitectureModel& m) {
    const obs::ObsSpan span("model_serialize", "io");
    Json j = Json::object();
    j["name"] = m.name();

    // Dense index maps (the graphs may contain id holes after erasures).
    std::unordered_map<LocationId, std::size_t> loc_index;
    std::unordered_map<ResourceId, std::size_t> res_index;
    std::unordered_map<NodeId, std::size_t> node_index;

    Json locations = Json::array();
    for (LocationId p : m.physical().node_ids()) {
        const Location& loc = m.physical().node(p);
        Json entry = Json::object();
        entry["name"] = loc.name;
        entry["lambda"] = loc.lambda;
        entry["env"] = env_to_json(loc.env);
        loc_index.emplace(p, locations.size());
        locations.push_back(std::move(entry));
    }
    j["locations"] = std::move(locations);

    Json connections = Json::array();
    for (ConnectionId e : m.physical().edge_ids()) {
        const auto& edge = m.physical().edge(e);
        Json entry = Json::object();
        entry["from"] = loc_index.at(edge.source);
        entry["to"] = loc_index.at(edge.sink);
        if (!edge.data.label.empty()) entry["label"] = edge.data.label;
        connections.push_back(std::move(entry));
    }
    j["physical_connections"] = std::move(connections);

    Json resources = Json::array();
    for (ResourceId r : m.resources().node_ids()) {
        const Resource& res = m.resources().node(r);
        Json entry = Json::object();
        entry["name"] = res.name;
        entry["kind"] = to_string(res.kind);
        entry["asil"] = to_string(res.asil);
        if (res.lambda_override) entry["lambda_override"] = *res.lambda_override;
        if (res.cost_override) entry["cost_override"] = *res.cost_override;
        Json placed = Json::array();
        for (LocationId p : m.resource_locations(r)) placed.push_back(loc_index.at(p));
        entry["locations"] = std::move(placed);
        res_index.emplace(r, resources.size());
        resources.push_back(std::move(entry));
    }
    j["resources"] = std::move(resources);

    Json links = Json::array();
    for (LinkId e : m.resources().edge_ids()) {
        const auto& edge = m.resources().edge(e);
        Json entry = Json::object();
        entry["from"] = res_index.at(edge.source);
        entry["to"] = res_index.at(edge.sink);
        if (!edge.data.label.empty()) entry["label"] = edge.data.label;
        links.push_back(std::move(entry));
    }
    j["resource_links"] = std::move(links);

    Json nodes = Json::array();
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        Json entry = Json::object();
        entry["name"] = node.name;
        entry["kind"] = to_string(node.kind);
        entry["asil"] = to_string(node.asil.level);
        entry["inherited"] = to_string(node.asil.inherited);
        if (!node.fsr.empty()) entry["fsr"] = node.fsr;
        Json mapped = Json::array();
        for (ResourceId r : m.mapped_resources(n)) mapped.push_back(res_index.at(r));
        entry["resources"] = std::move(mapped);
        node_index.emplace(n, nodes.size());
        nodes.push_back(std::move(entry));
    }
    j["nodes"] = std::move(nodes);

    Json channels = Json::array();
    for (ChannelId e : m.app().edge_ids()) {
        const auto& edge = m.app().edge(e);
        Json entry = Json::object();
        entry["from"] = node_index.at(edge.source);
        entry["to"] = node_index.at(edge.sink);
        if (!edge.data.label.empty()) entry["label"] = edge.data.label;
        channels.push_back(std::move(entry));
    }
    j["channels"] = std::move(channels);

    return j;
}

ArchitectureModel model_from_json(const Json& j) {
    const obs::ObsSpan span("model_parse", "io");
    ArchitectureModel m(j.get_or_null("name").is_null() ? "" : j.at("name").as_string());

    std::vector<LocationId> locations;
    for (const Json& entry : j.at("locations").as_array()) {
        Location loc;
        loc.name = entry.at("name").as_string();
        loc.lambda = entry.at("lambda").as_number();
        loc.env = env_from_json(entry.get_or_null("env"));
        locations.push_back(m.add_location(std::move(loc)));
    }
    for (const Json& entry : j.get_or_null("physical_connections").is_null()
                                 ? JsonArray{}
                                 : j.at("physical_connections").as_array()) {
        PhysicalConnection c;
        if (entry.contains("label")) c.label = entry.at("label").as_string();
        m.physical().add_edge(locations.at(static_cast<std::size_t>(entry.at("from").as_int())),
                              locations.at(static_cast<std::size_t>(entry.at("to").as_int())),
                              std::move(c));
    }

    std::vector<ResourceId> resources;
    for (const Json& entry : j.at("resources").as_array()) {
        Resource res;
        res.name = entry.at("name").as_string();
        res.kind = resource_kind_from_string(entry.at("kind").as_string());
        res.asil = asil_from_json(entry.at("asil"), "resource");
        if (entry.contains("lambda_override")) {
            res.lambda_override = entry.at("lambda_override").as_number();
        }
        if (entry.contains("cost_override")) {
            res.cost_override = entry.at("cost_override").as_number();
        }
        const ResourceId r = m.add_resource(std::move(res));
        resources.push_back(r);
        for (const Json& p : entry.at("locations").as_array()) {
            m.place_resource(r, locations.at(static_cast<std::size_t>(p.as_int())));
        }
    }
    for (const Json& entry : j.get_or_null("resource_links").is_null()
                                 ? JsonArray{}
                                 : j.at("resource_links").as_array()) {
        ResourceLink link;
        if (entry.contains("label")) link.label = entry.at("label").as_string();
        m.resources().add_edge(resources.at(static_cast<std::size_t>(entry.at("from").as_int())),
                               resources.at(static_cast<std::size_t>(entry.at("to").as_int())),
                               std::move(link));
    }

    std::vector<NodeId> nodes;
    for (const Json& entry : j.at("nodes").as_array()) {
        AppNode node;
        node.name = entry.at("name").as_string();
        node.kind = node_kind_from_string(entry.at("kind").as_string());
        node.asil.level = asil_from_json(entry.at("asil"), "node");
        node.asil.inherited = entry.contains("inherited")
                                  ? asil_from_json(entry.at("inherited"), "node")
                                  : node.asil.level;
        if (entry.contains("fsr")) node.fsr = entry.at("fsr").as_string();
        const NodeId n = m.add_app_node(std::move(node));
        nodes.push_back(n);
        for (const Json& r : entry.at("resources").as_array()) {
            m.map_node(n, resources.at(static_cast<std::size_t>(r.as_int())));
        }
    }
    for (const Json& entry : j.at("channels").as_array()) {
        Channel c;
        if (entry.contains("label")) c.label = entry.at("label").as_string();
        m.connect_app(nodes.at(static_cast<std::size_t>(entry.at("from").as_int())),
                      nodes.at(static_cast<std::size_t>(entry.at("to").as_int())), std::move(c));
    }
    return m;
}

void save_model(const ArchitectureModel& m, const std::string& path) {
    save_json_file(to_json(m), path);
}

ArchitectureModel load_model(const std::string& path) {
    return model_from_json(load_json_file(path));
}

}  // namespace asilkit::io

// Fig. 5: the structure produced by Expand() on a functional node.
//
// Verifies the "7 extra nodes" count for a 1-input/1-output node, shows
// the communication-node variant, and times Expand() itself.
#include "bench_util.h"

#include "model/blocks.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Fig. 5: Expand(n) on a 1-in/1-out functional ASIL D node");
    ArchitectureModel m = scenarios::chain_1in_1out();
    const std::size_t nodes_before = m.app().node_count();
    const transform::ExpandResult r = transform::expand(m, m.find_app_node("n"));
    bench::compare("extra application nodes", "7",
                   std::to_string(m.app().node_count() - nodes_before));
    bench::row("pattern applied", to_string(r.pattern));
    bench::row("splitters / mergers",
               std::to_string(r.splitters.size()) + " / " + std::to_string(r.mergers.size()));
    const RedundantBlock block = find_block_at_merger(m, r.mergers[0]);
    bench::row("resulting block ASIL (Eq. 4)", std::string(to_string(block_asil(m, block))));
    for (NodeId replica : r.replicas) {
        bench::row("replica " + m.app().node(replica).name,
                   to_string(m.app().node(replica).asil));
    }

    bench::heading("Communication-node variant");
    ArchitectureModel mc = scenarios::chain_1in_1out();
    const std::size_t before_c = mc.app().node_count();
    transform::expand(mc, mc.find_app_node("c_out"));
    bench::row("extra application nodes (comm expand)",
               std::to_string(mc.app().node_count() - before_c));
    bench::note("comm expansion adds c_pre/c_post around the splitter/merger and one");
    bench::note("communication node per branch (paper Sec. VII-A).");
}

void BM_ExpandFunctional(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ArchitectureModel m = scenarios::chain_1in_1out();
        const NodeId n = m.find_app_node("n");
        state.ResumeTiming();
        benchmark::DoNotOptimize(transform::expand(m, n));
    }
}
BENCHMARK(BM_ExpandFunctional);

void BM_ExpandCommunication(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ArchitectureModel m = scenarios::chain_1in_1out();
        const NodeId n = m.find_app_node("c_out");
        state.ResumeTiming();
        benchmark::DoNotOptimize(transform::expand(m, n));
    }
}
BENCHMARK(BM_ExpandCommunication);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

file(REMOVE_RECURSE
  "CMakeFiles/test_traceability.dir/test_traceability.cpp.o"
  "CMakeFiles/test_traceability.dir/test_traceability.cpp.o.d"
  "test_traceability"
  "test_traceability.pdb"
  "test_traceability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traceability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "cost/cost_analysis.h"

#include <algorithm>

namespace asilkit::cost {
namespace {

std::vector<ResourceId> counted_resources(const ArchitectureModel& m, const CostOptions& options) {
    if (options.include_unused_resources) return m.resources().node_ids();
    return m.used_resources();
}

}  // namespace

double total_cost(const ArchitectureModel& m, const CostMetric& metric,
                  const CostOptions& options) {
    double total = 0.0;
    for (ResourceId r : counted_resources(m, options)) {
        total += metric.resource_cost(m.resources().node(r));
    }
    return total;
}

double merged_total_cost(double current_total, const CostMetric& metric, const Resource& into,
                         const Resource& from) {
    Resource merged = into;
    merged.asil = asil_max(into.asil, from.asil);
    return current_total - metric.resource_cost(into) - metric.resource_cost(from) +
           metric.resource_cost(merged);
}

CostReport cost_report(const ArchitectureModel& m, const CostMetric& metric,
                       const CostOptions& options) {
    CostReport report;
    for (ResourceId r : counted_resources(m, options)) {
        const Resource& res = m.resources().node(r);
        const double c = metric.resource_cost(res);
        report.total += c;
        report.by_kind[static_cast<std::size_t>(res.kind)] += c;
        report.breakdown.push_back(CostBreakdownEntry{r, res.name, res.kind, res.asil, c});
    }
    std::sort(report.breakdown.begin(), report.breakdown.end(),
              [](const CostBreakdownEntry& a, const CostBreakdownEntry& b) {
                  if (a.cost != b.cost) return a.cost > b.cost;
                  return a.name < b.name;
              });
    return report;
}

}  // namespace asilkit::cost

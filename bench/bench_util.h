// Shared helpers for the benchmark harness: every bench binary prints the
// table/figure it regenerates (paper value next to measured value where
// the paper states one) before running its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace asilkit::bench {

inline void heading(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value) {
    std::printf("  %-46s %s\n", label.c_str(), value.c_str());
}

inline void row(const std::string& label, double value) {
    std::printf("  %-46s %.6g\n", label.c_str(), value);
}

/// "label: paper=X measured=Y" comparison row.
inline void compare(const std::string& label, const std::string& paper, double measured) {
    std::printf("  %-34s paper=%-12s measured=%.6g\n", label.c_str(), paper.c_str(), measured);
}

inline void compare(const std::string& label, const std::string& paper,
                    const std::string& measured) {
    std::printf("  %-34s paper=%-12s measured=%s\n", label.c_str(), paper.c_str(),
                measured.c_str());
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace asilkit::bench

/// Prints the report, then runs any registered google-benchmark timings.
#define ASILKIT_BENCH_MAIN(print_report)                 \
    int main(int argc, char** argv) {                    \
        print_report();                                  \
        benchmark::Initialize(&argc, argv);              \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        benchmark::RunSpecifiedBenchmarks();             \
        benchmark::Shutdown();                           \
        return 0;                                        \
    }

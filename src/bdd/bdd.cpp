#include "bdd/bdd.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::bdd {
namespace {

constexpr std::size_t kInitialTableCapacity = 1 << 10;  // power of two

/// Grow when a table passes ~70 % occupancy.
[[nodiscard]] constexpr bool over_load(std::size_t entries, std::size_t capacity) noexcept {
    return entries * 10 >= capacity * 7;
}

[[nodiscard]] constexpr std::uint64_t pack_pair(BddRef f, BddRef g) noexcept {
    return (static_cast<std::uint64_t>(f) << 32) | g;
}

}  // namespace

BddManager::BddManager(std::uint32_t variable_count) : variable_count_(variable_count) {
    nodes_.push_back(Node{variable_count_, kFalse, kFalse});  // terminal 0
    nodes_.push_back(Node{variable_count_, kTrue, kTrue});    // terminal 1
    unique_.slots.assign(kInitialTableCapacity, kFalse);
    for (ApplyCache& cache : apply_cache_) {
        cache.slots.assign(kInitialTableCapacity, ApplyCache::Slot{});
    }
}

BddRef BddManager::variable(std::uint32_t var) {
    if (var >= variable_count_) throw AnalysisError("bdd: variable index out of range");
    return make(var, kTrue, kFalse);
}

BddRef BddManager::make(std::uint32_t var, BddRef high, BddRef low) {
    if (high == low) return high;  // reduction rule
    return unique_lookup_or_insert(var, high, low);
}

BddRef BddManager::unique_lookup_or_insert(std::uint32_t var, BddRef high, BddRef low) {
    if (over_load(unique_.entries, unique_.slots.size())) unique_grow();
    const std::size_t mask = unique_.slots.size() - 1;
    std::size_t i = static_cast<std::size_t>(detail::mix_node_key(var, high, low)) & mask;
    for (;; i = (i + 1) & mask) {
        const BddRef ref = unique_.slots[i];
        if (ref == kFalse) break;  // empty slot: not present
        const Node& n = nodes_[ref];
        if (n.var == var && n.high == high && n.low == low) return ref;
    }
    const auto ref = static_cast<BddRef>(nodes_.size());
    nodes_.push_back(Node{var, high, low});
    unique_.slots[i] = ref;
    ++unique_.entries;
    return ref;
}

void BddManager::unique_grow() {
    ++obs_tally_.unique_resizes;
    obs::trace_instant("unique_grow", "bdd", "capacity",
                       static_cast<double>(unique_.slots.size() * 2));
    std::vector<BddRef> old = std::move(unique_.slots);
    unique_.slots.assign(old.size() * 2, kFalse);
    const std::size_t mask = unique_.slots.size() - 1;
    for (const BddRef ref : old) {
        if (ref == kFalse) continue;
        const Node& n = nodes_[ref];
        std::size_t i = static_cast<std::size_t>(detail::mix_node_key(n.var, n.high, n.low)) & mask;
        while (unique_.slots[i] != kFalse) i = (i + 1) & mask;
        unique_.slots[i] = ref;
    }
}

BddRef* BddManager::apply_slot(ApplyCache& cache, std::uint64_t key) {
    if (over_load(cache.entries, cache.slots.size())) apply_grow(cache);
    const std::size_t mask = cache.slots.size() - 1;
    std::size_t i = static_cast<std::size_t>(detail::mix64(key)) & mask;
    while (cache.slots[i].key != 0 && cache.slots[i].key != key) i = (i + 1) & mask;
    if (cache.slots[i].key == 0) {
        cache.slots[i].key = key;
        ++cache.entries;
    }
    return &cache.slots[i].result;
}

void BddManager::apply_grow(ApplyCache& cache) {
    ++obs_tally_.apply_resizes;
    obs::trace_instant("apply_grow", "bdd", "capacity",
                       static_cast<double>(cache.slots.size() * 2));
    std::vector<ApplyCache::Slot> old = std::move(cache.slots);
    cache.slots.assign(old.size() * 2, ApplyCache::Slot{});
    const std::size_t mask = cache.slots.size() - 1;
    for (const ApplyCache::Slot& s : old) {
        if (s.key == 0) continue;
        std::size_t i = static_cast<std::size_t>(detail::mix64(s.key)) & mask;
        while (cache.slots[i].key != 0) i = (i + 1) & mask;
        cache.slots[i] = s;
    }
}

BddRef BddManager::apply(BddOp op, BddRef f, BddRef g) {
    // Terminal cases.
    if (op == BddOp::Or) {
        if (f == kTrue || g == kTrue) return kTrue;
        if (f == kFalse) return g;
        if (g == kFalse) return f;
        if (f == g) return f;
    } else {
        if (f == kFalse || g == kFalse) return kFalse;
        if (f == kTrue) return g;
        if (g == kTrue) return f;
        if (f == g) return f;
    }
    // Both operations are commutative: canonicalise the cache key.  Both
    // operands are interior nodes here (>= 2), so the packed key is
    // nonzero and can use 0 as the empty-slot marker.
    const std::uint64_t key = pack_pair(std::min(f, g), std::max(f, g));
    ApplyCache& cache = apply_cache_[static_cast<std::size_t>(op)];
    // Plain (non-atomic) tallies on the hot path: a manager is
    // single-threaded, so these cost one register add each and are folded
    // into the global registry by flush_obs() at evaluation boundaries.
    ++obs_tally_.apply_lookups;
    {
        const std::size_t mask = cache.slots.size() - 1;
        std::size_t i = static_cast<std::size_t>(detail::mix64(key)) & mask;
        for (; cache.slots[i].key != 0; i = (i + 1) & mask) {
            if (cache.slots[i].key == key) {
                ++obs_tally_.apply_hits;
                return cache.slots[i].result;
            }
        }
    }

    const std::uint32_t vf = var_of(f);
    const std::uint32_t vg = var_of(g);
    const std::uint32_t v = std::min(vf, vg);
    // Paper Eq. 1 (X < Y): recurse into the smaller variable only;
    // Eq. 2 (X == Y): recurse into both cofactors.
    const BddRef f_high = vf == v ? nodes_[f].high : f;
    const BddRef f_low = vf == v ? nodes_[f].low : f;
    const BddRef g_high = vg == v ? nodes_[g].high : g;
    const BddRef g_low = vg == v ? nodes_[g].low : g;

    const BddRef high = apply(op, f_high, g_high);
    const BddRef low = apply(op, f_low, g_low);
    const BddRef result = make(v, high, low);
    // Insert after the recursion: the recursive calls may have grown the
    // cache, so the slot is located now (pointers would be stale).
    *apply_slot(cache, key) = result;
    return result;
}

BddRef BddManager::apply_not(BddRef f) {
    if (f == kFalse) return kTrue;
    if (f == kTrue) return kFalse;
    // Negation via Shannon expansion; memoised through the unique table
    // only (negation is rare in fault trees — used by importance
    // measures), so a local cache per call suffices.
    std::unordered_map<BddRef, BddRef> memo;
    std::function<BddRef(BddRef)> rec = [&](BddRef x) -> BddRef {
        if (x == kFalse) return kTrue;
        if (x == kTrue) return kFalse;
        if (auto it = memo.find(x); it != memo.end()) return it->second;
        const Node& n = nodes_[x];
        const BddRef r = make(n.var, rec(n.high), rec(n.low));
        memo.emplace(x, r);
        return r;
    };
    return rec(f);
}

double BddManager::probability(BddRef f, std::span<const double> var_probability) const {
    if (var_probability.size() != variable_count_) {
        throw AnalysisError("bdd: probability vector size != variable count");
    }
    // Fingerprint the probability vector; a change invalidates the memo.
    std::uint64_t key = detail::mix64(variable_count_);
    for (const double p : var_probability) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(p));
        std::memcpy(&bits, &p, sizeof(bits));
        key = detail::mix64(key ^ bits);
    }
    if (key != prob_key_ || prob_memo_.size() < 2) {
        prob_key_ = key;
        prob_memo_.assign(2, 0.0);
        prob_memo_[kTrue] = 1.0;
        prob_valid_ = 2;
    }
    // Children precede parents in the arena, so one bottom-up sweep over
    // the not-yet-evaluated suffix covers every node (including f).
    if (prob_valid_ < nodes_.size()) {
        prob_memo_.resize(nodes_.size());
        for (std::size_t i = prob_valid_; i < nodes_.size(); ++i) {
            const Node& n = nodes_[i];
            const double p = var_probability[n.var];
            prob_memo_[i] = p * prob_memo_[n.high] + (1.0 - p) * prob_memo_[n.low];
        }
        prob_valid_ = nodes_.size();
    }
    return prob_memo_[f];
}

std::size_t BddManager::node_count(BddRef f) const {
    std::unordered_set<BddRef> seen;
    std::vector<BddRef> stack{f};
    while (!stack.empty()) {
        const BddRef x = stack.back();
        stack.pop_back();
        if (is_terminal(x) || !seen.insert(x).second) continue;
        stack.push_back(nodes_[x].high);
        stack.push_back(nodes_[x].low);
    }
    return seen.size();
}

bool BddManager::evaluate(BddRef f, const std::vector<bool>& assignment) const {
    if (assignment.size() != variable_count_) {
        throw AnalysisError("bdd: assignment size != variable count");
    }
    BddRef x = f;
    while (!is_terminal(x)) {
        const Node& n = nodes_[x];
        x = assignment[n.var] ? n.high : n.low;
    }
    return x == kTrue;
}

BddManager::NodeView BddManager::node(BddRef f) const {
    if (is_terminal(f) || f >= nodes_.size()) {
        throw AnalysisError("bdd: node() on terminal or invalid ref");
    }
    const Node& n = nodes_[f];
    return NodeView{n.var, n.high, n.low};
}

void BddManager::flush_obs() const {
    static obs::Counter& lookups = obs::Registry::global().counter("bdd.apply_lookups");
    static obs::Counter& hits = obs::Registry::global().counter("bdd.apply_hits");
    static obs::Counter& unique_resizes = obs::Registry::global().counter("bdd.unique_resizes");
    static obs::Counter& apply_resizes = obs::Registry::global().counter("bdd.apply_resizes");
    static obs::Counter& nodes_created = obs::Registry::global().counter("bdd.nodes_created");
    static obs::Gauge& high_water = obs::Registry::global().gauge("bdd.node_high_water");
    static obs::Gauge& load_factor = obs::Registry::global().gauge("bdd.unique_load_factor");

    lookups.add(obs_tally_.apply_lookups);
    hits.add(obs_tally_.apply_hits);
    unique_resizes.add(obs_tally_.unique_resizes);
    apply_resizes.add(obs_tally_.apply_resizes);
    obs_tally_ = ObsTally{};

    // Arena growth since the last flush (first flush baselines away the
    // two terminals, which are storage, not created nodes).
    if (obs_nodes_flushed_ < 2) obs_nodes_flushed_ = 2;
    if (nodes_.size() > obs_nodes_flushed_) {
        nodes_created.add(nodes_.size() - obs_nodes_flushed_);
        obs_nodes_flushed_ = nodes_.size();
    }
    high_water.set_max(static_cast<double>(size()));
    if (!unique_.slots.empty()) {
        load_factor.set(static_cast<double>(unique_.entries) /
                        static_cast<double>(unique_.slots.size()));
    }
}

}  // namespace asilkit::bdd

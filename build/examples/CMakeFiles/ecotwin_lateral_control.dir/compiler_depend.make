# Empty compiler generated dependencies file for ecotwin_lateral_control.
# This may be replaced when dependencies are built.

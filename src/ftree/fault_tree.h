// Fault-tree data structure (paper Section V).
//
// A fault tree here is a rooted DAG: interior nodes are AND/OR gates,
// leaves are basic events with a failure rate lambda (failures/hour).
// DAG — not tree — because a resource shared by several application nodes
// contributes ONE basic event referenced from several gates; that sharing
// is precisely what the Common-Cause-Fault analysis looks for and what
// makes the Fig. 9 mapping experiment behave.
//
// Nodes are index-addressed within the owning FaultTree; FtRef is a typed
// (kind, index) handle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.h"

namespace asilkit::ftree {

enum class GateKind : std::uint8_t { Or, And };

[[nodiscard]] std::string_view to_string(GateKind k) noexcept;

/// Reference to a node inside a FaultTree.
struct FtRef {
    enum class Kind : std::uint8_t { Basic, Gate } kind = Kind::Basic;
    std::uint32_t index = 0;

    friend bool operator==(const FtRef&, const FtRef&) = default;
};

struct BasicEvent {
    std::string name;
    double lambda = 0.0;  ///< failures/hour
};

struct Gate {
    std::string name;
    GateKind kind = GateKind::Or;
    std::vector<FtRef> children;
};

/// Statistics of a fault tree; `dag_nodes` counts each shared node once,
/// `expanded_nodes` and `paths` treat the structure as a tree (the
/// quantities the paper reports: the Fig. 3 example goes from 87 to 51
/// nodes under the approximation, and the number of root-to-leaf paths
/// doubles per ASIL decomposition without it).
struct FaultTreeStats {
    std::size_t basic_events = 0;
    std::size_t gates = 0;
    std::size_t dag_nodes = 0;
    std::uint64_t expanded_nodes = 0;  ///< saturates at 2^62
    std::uint64_t paths = 0;           ///< saturates at 2^62
    std::size_t depth = 0;
};

std::ostream& operator<<(std::ostream& os, const FaultTreeStats& s);

class FaultTree {
public:
    /// Adds (or finds) a basic event by name.  Re-adding an existing name
    /// with a different lambda is an error: one physical cause, one rate.
    FtRef add_basic_event(std::string name, double lambda);

    /// Adds a gate.  Children may be added later via add_child.
    FtRef add_gate(std::string name, GateKind kind, std::vector<FtRef> children = {});

    void add_child(FtRef gate, FtRef child);

    void set_top(FtRef top);
    [[nodiscard]] FtRef top() const;
    [[nodiscard]] bool has_top() const noexcept { return has_top_; }

    [[nodiscard]] const BasicEvent& basic_event(std::uint32_t index) const;
    [[nodiscard]] const Gate& gate(std::uint32_t index) const;
    [[nodiscard]] const BasicEvent& basic_event(FtRef r) const;
    [[nodiscard]] const Gate& gate(FtRef r) const;

    [[nodiscard]] std::span<const BasicEvent> basic_events() const noexcept { return basics_; }
    [[nodiscard]] std::span<const Gate> gates() const noexcept { return gates_; }

    /// Finds a basic event by name; returns {Basic, index} or throws.
    [[nodiscard]] FtRef find_basic_event(std::string_view name) const;
    [[nodiscard]] bool has_basic_event(std::string_view name) const noexcept;

    /// Statistics over the subtree reachable from top().
    [[nodiscard]] FaultTreeStats stats() const;

    /// The basic events reachable from `root` (deduplicated, by index).
    [[nodiscard]] std::vector<std::uint32_t> reachable_basic_events(FtRef root) const;

private:
    std::vector<BasicEvent> basics_;
    std::vector<Gate> gates_;
    std::unordered_map<std::string, std::uint32_t> basic_by_name_;
    FtRef top_{};
    bool has_top_ = false;
};

}  // namespace asilkit::ftree

// Negative-compile probe for the thread-safety annotations.
//
// Compiled by ctest ONLY under Clang (see tests/CMakeLists.txt) with
// -Wthread-safety -Werror -fsyntax-only, twice:
//   * without ASILKIT_NEGATIVE_VIOLATION: must COMPILE — the positive
//     control proving the probe itself is well-formed, so the expected
//     failure below can only come from the seeded violation;
//   * with -DASILKIT_NEGATIVE_VIOLATION: must FAIL (WILL_FAIL ctest
//     property) — a GUARDED_BY member touched without its mutex is a
//     -Wthread-safety error, which is the whole point of the migration.
//
// If the violating branch ever starts compiling, the annotations have
// silently stopped being enforced (wrong flags, attributes compiled
// out) and the static-analysis job is running blind.
#include "core/sync.h"

#include <cstddef>

namespace {

class Counter {
public:
    void increment() {
        const asilkit::core::MutexLock lock(mu_);
        ++value_;
    }

    [[nodiscard]] std::size_t read() {
#if defined(ASILKIT_NEGATIVE_VIOLATION)
        // Seeded violation: guarded read without holding mu_.
        return value_;
#else
        const asilkit::core::MutexLock lock(mu_);
        return value_;
#endif
    }

private:
    asilkit::core::Mutex mu_;
    std::size_t value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Counter c;
    c.increment();
    return c.read() == 1 ? 0 : 1;
}

# Empty dependencies file for test_ccf.
# This may be replaced when dependencies are built.

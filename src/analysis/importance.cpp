#include "analysis/importance.h"

#include <algorithm>

#include "bdd/from_fault_tree.h"

namespace asilkit::analysis {

std::vector<ImportanceEntry> importance_measures(const ftree::FaultTree& ft,
                                                 double mission_hours) {
    const bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(ft);
    std::vector<double> probs = compiled.variable_probabilities(ft, mission_hours);
    const double q = compiled.manager.probability(compiled.root, probs);

    std::vector<ImportanceEntry> out;
    out.reserve(probs.size());
    for (std::uint32_t v = 0; v < probs.size(); ++v) {
        ImportanceEntry entry;
        entry.event = ft.basic_event(compiled.event_of_var[v]).name;
        entry.probability = probs[v];

        const double saved = probs[v];
        probs[v] = 1.0;
        const double q_up = compiled.manager.probability(compiled.root, probs);
        probs[v] = 0.0;
        const double q_down = compiled.manager.probability(compiled.root, probs);
        probs[v] = saved;

        entry.birnbaum = q_up - q_down;
        entry.criticality = q > 0.0 ? entry.birnbaum * saved / q : 0.0;
        entry.fussell_vesely = q > 0.0 ? 1.0 - q_down / q : 0.0;
        out.push_back(std::move(entry));
    }
    std::sort(out.begin(), out.end(), [](const ImportanceEntry& a, const ImportanceEntry& b) {
        if (a.birnbaum != b.birnbaum) return a.birnbaum > b.birnbaum;
        return a.event < b.event;
    });
    return out;
}

}  // namespace asilkit::analysis

#include "io/watch_rules.h"

#include "io/json.h"

namespace asilkit::io {

std::vector<obs::WatchdogRule> parse_watch_rules(const Json& doc) {
    const Json& rules = doc.is_object() && doc.contains("rules") ? doc.at("rules") : doc;
    if (!rules.is_array()) {
        throw IoError("watch rules: expected an array (or {\"rules\": [...]})");
    }
    std::vector<obs::WatchdogRule> parsed;
    parsed.reserve(rules.as_array().size());
    for (const Json& entry : rules.as_array()) {
        if (!entry.is_object()) throw IoError("watch rules: each rule must be an object");
        obs::WatchdogRule rule;
        if (!entry.contains("metric") || !entry.at("metric").is_string()) {
            throw IoError("watch rules: rule is missing its \"metric\" id");
        }
        rule.metric = entry.at("metric").as_string();
        rule.id = entry.contains("id") ? entry.at("id").as_string() : rule.metric;
        if (!entry.contains("op") || !entry.at("op").is_string()) {
            throw IoError("watch rules: rule '" + rule.id + "' is missing its \"op\"");
        }
        const auto op = obs::parse_op(entry.at("op").as_string());
        if (!op) {
            throw IoError("watch rules: rule '" + rule.id + "' has unknown op '" +
                          entry.at("op").as_string() + "' (expected <, <=, >, >=)");
        }
        rule.op = *op;
        if (!entry.contains("threshold") || !entry.at("threshold").is_number()) {
            throw IoError("watch rules: rule '" + rule.id +
                          "' is missing its numeric \"threshold\"");
        }
        rule.threshold = entry.at("threshold").as_number();
        if (entry.contains("for_ms")) {
            const double ms = entry.at("for_ms").as_number();
            if (ms < 0) {
                throw IoError("watch rules: rule '" + rule.id + "' has negative for_ms");
            }
            rule.for_ns = static_cast<std::uint64_t>(ms * 1e6);
        }
        parsed.push_back(std::move(rule));
    }
    return parsed;
}

std::vector<obs::WatchdogRule> load_watch_rules(const std::string& path) {
    return parse_watch_rules(load_json_file(path));
}

}  // namespace asilkit::io

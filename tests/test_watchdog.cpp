// Threshold-watchdog semantics, driven with synthetic clocks and
// hand-built snapshots so every assertion is deterministic: fire only
// after for_duration, fire once per breach episode, clear on recovery,
// no-data never breaches.  Also covers the io-layer rule-file parser.
#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/json.h"
#include "io/watch_rules.h"
#include "obs/metrics.h"

namespace asilkit::obs {
namespace {

MetricsSnapshot snapshot_with(double queue_depth, std::uint64_t hits = 0,
                              std::uint64_t misses = 0) {
    MetricsSnapshot snap;
    snap.gauges.push_back({"engine.queue_depth", queue_depth});
    snap.counters.push_back({"engine.cache.hits", hits});
    snap.counters.push_back({"engine.cache.misses", misses});
    MetricsSnapshot::HistogramSample hist;
    hist.id = "engine.analyze_ns";
    hist.bounds = {10.0, 100.0};
    hist.counts = {3, 2, 1};
    hist.count = 6;
    hist.sum = 250.0;
    snap.histograms.push_back(std::move(hist));
    return snap;
}

TEST(ParseOp, AcceptsSymbolsAndMnemonics) {
    EXPECT_EQ(parse_op("<"), WatchdogRule::Op::Lt);
    EXPECT_EQ(parse_op("<="), WatchdogRule::Op::Le);
    EXPECT_EQ(parse_op(">"), WatchdogRule::Op::Gt);
    EXPECT_EQ(parse_op(">="), WatchdogRule::Op::Ge);
    EXPECT_EQ(parse_op("lt"), WatchdogRule::Op::Lt);
    EXPECT_EQ(parse_op("ge"), WatchdogRule::Op::Ge);
    EXPECT_FALSE(parse_op("==").has_value());
    EXPECT_FALSE(parse_op("").has_value());
}

TEST(ResolveMetric, PlainIdsAndHistogramProjections) {
    const MetricsSnapshot snap = snapshot_with(7.0, 30, 10);
    EXPECT_EQ(Watchdog::resolve_metric("engine.queue_depth", snap), 7.0);
    EXPECT_EQ(Watchdog::resolve_metric("engine.cache.hits", snap), 30.0);
    EXPECT_EQ(Watchdog::resolve_metric("engine.analyze_ns.count", snap), 6.0);
    EXPECT_EQ(Watchdog::resolve_metric("engine.analyze_ns.sum", snap), 250.0);
    EXPECT_FALSE(Watchdog::resolve_metric("no.such.metric", snap).has_value());
}

TEST(ResolveMetric, RatiosAndZeroDenominator) {
    const MetricsSnapshot snap = snapshot_with(0.0, 30, 10);
    EXPECT_EQ(Watchdog::resolve_metric("engine.cache.hits/engine.cache.misses", snap),
              3.0);
    // Zero denominator and half-missing ratios are no-data, not infinity.
    EXPECT_FALSE(
        Watchdog::resolve_metric("engine.cache.hits/engine.queue_depth", snap)
            .has_value());
    EXPECT_FALSE(
        Watchdog::resolve_metric("engine.cache.hits/no.such", snap).has_value());
}

TEST(WatchdogTest, FiresAfterForDurationNotBefore) {
    Watchdog dog({{"deep", "engine.queue_depth", WatchdogRule::Op::Gt, 5.0, 1000}});
    dog.evaluate(0, snapshot_with(9.0));     // breach starts; window 0 < 1000
    EXPECT_EQ(dog.fire_count(), 0u);
    dog.evaluate(999, snapshot_with(9.0));   // window 999 < 1000: still silent
    EXPECT_EQ(dog.fire_count(), 0u);
    dog.evaluate(1000, snapshot_with(9.0));  // window 1000 >= 1000: fire
    EXPECT_EQ(dog.fire_count(), 1u);
    dog.evaluate(2000, snapshot_with(9.0));  // ongoing breach: no re-fire
    EXPECT_EQ(dog.fire_count(), 1u);

    const std::vector<WatchdogEvent> events = dog.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].fired);
    EXPECT_EQ(events[0].rule, "deep");
    EXPECT_EQ(events[0].ts_ns, 1000u);
    EXPECT_EQ(events[0].window_ns, 1000u);
    EXPECT_EQ(events[0].value, 9.0);
}

TEST(WatchdogTest, ZeroForDurationFiresImmediately) {
    Watchdog dog({{"any", "engine.queue_depth", WatchdogRule::Op::Ge, 1.0, 0}});
    dog.evaluate(42, snapshot_with(1.0));
    EXPECT_EQ(dog.fire_count(), 1u);
}

TEST(WatchdogTest, ClearsOnRecoveryAndCanRefire) {
    Watchdog dog({{"deep", "engine.queue_depth", WatchdogRule::Op::Gt, 5.0, 100}});
    dog.evaluate(0, snapshot_with(9.0));
    dog.evaluate(100, snapshot_with(9.0));  // fire
    dog.evaluate(200, snapshot_with(2.0));  // recovered: clear
    std::vector<WatchdogEvent> events = dog.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_TRUE(events[0].fired);
    EXPECT_FALSE(events[1].fired);
    EXPECT_EQ(events[1].ts_ns, 200u);

    // A fresh breach episode starts its window from scratch and fires
    // again once it persists.
    dog.evaluate(300, snapshot_with(9.0));
    EXPECT_EQ(dog.fire_count(), 1u);  // window restarted: not yet
    dog.evaluate(400, snapshot_with(9.0));
    EXPECT_EQ(dog.fire_count(), 2u);
}

TEST(WatchdogTest, InterruptedBreachNeverFires) {
    Watchdog dog({{"deep", "engine.queue_depth", WatchdogRule::Op::Gt, 5.0, 1000}});
    dog.evaluate(0, snapshot_with(9.0));
    dog.evaluate(500, snapshot_with(1.0));   // breach broken before the window
    dog.evaluate(600, snapshot_with(9.0));   // new episode
    dog.evaluate(1500, snapshot_with(1.0));  // broken again at 900 < 1000
    EXPECT_EQ(dog.fire_count(), 0u);
    EXPECT_TRUE(dog.events().empty());  // no fire -> no clear either
}

TEST(WatchdogTest, UnresolvableMetricIsNoData) {
    Watchdog dog({{"ghost", "does.not.exist", WatchdogRule::Op::Ge, 0.0, 0}});
    dog.evaluate(0, snapshot_with(1.0));
    dog.evaluate(100, snapshot_with(1.0));
    EXPECT_EQ(dog.fire_count(), 0u);
}

TEST(WatchdogTest, SinkReceivesParseableNdjson) {
    std::ostringstream sink;
    Watchdog dog({{"deep", "engine.queue_depth", WatchdogRule::Op::Gt, 5.0, 0}});
    dog.set_sink(&sink);
    dog.evaluate(10, snapshot_with(9.0));
    dog.evaluate(20, snapshot_with(1.0));

    std::istringstream lines(sink.str());
    std::string line;
    std::vector<io::Json> parsed;
    while (std::getline(lines, line)) parsed.push_back(io::Json::parse(line));
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].at("event").as_string(), "fire");
    EXPECT_EQ(parsed[0].at("rule").as_string(), "deep");
    EXPECT_EQ(parsed[0].at("metric").as_string(), "engine.queue_depth");
    EXPECT_EQ(parsed[0].at("value").as_number(), 9.0);
    EXPECT_EQ(parsed[0].at("threshold").as_number(), 5.0);
    EXPECT_EQ(parsed[1].at("event").as_string(), "clear");
}

TEST(WatchRules, ParsesDocumentWithDefaults) {
    const io::Json doc = io::Json::parse(R"({"rules": [
        {"id": "deep", "metric": "engine.queue_depth", "op": ">",
         "threshold": 500, "for_ms": 5000},
        {"metric": "engine.cache.hits/engine.cache.misses", "op": "lt",
         "threshold": 0.25}
    ]})");
    const std::vector<WatchdogRule> rules = io::parse_watch_rules(doc);
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].id, "deep");
    EXPECT_EQ(rules[0].op, WatchdogRule::Op::Gt);
    EXPECT_EQ(rules[0].threshold, 500.0);
    EXPECT_EQ(rules[0].for_ns, 5'000'000'000u);
    // id defaults to the metric; for_ms defaults to 0.
    EXPECT_EQ(rules[1].id, "engine.cache.hits/engine.cache.misses");
    EXPECT_EQ(rules[1].op, WatchdogRule::Op::Lt);
    EXPECT_EQ(rules[1].for_ns, 0u);
}

TEST(WatchRules, AcceptsBareArray) {
    const io::Json doc = io::Json::parse(
        R"([{"metric": "a", "op": ">=", "threshold": 1}])");
    EXPECT_EQ(io::parse_watch_rules(doc).size(), 1u);
}

TEST(WatchRules, RejectsMalformedRules) {
    EXPECT_THROW(io::parse_watch_rules(io::Json::parse(R"({"rules": 3})")), IoError);
    EXPECT_THROW(io::parse_watch_rules(io::Json::parse(
                     R"([{"op": ">", "threshold": 1}])")),
                 IoError);  // missing metric
    EXPECT_THROW(io::parse_watch_rules(io::Json::parse(
                     R"([{"metric": "a", "op": "!!", "threshold": 1}])")),
                 IoError);  // unknown op
    EXPECT_THROW(io::parse_watch_rules(io::Json::parse(
                     R"([{"metric": "a", "op": ">"}])")),
                 IoError);  // missing threshold
    EXPECT_THROW(io::parse_watch_rules(io::Json::parse(
                     R"([{"metric": "a", "op": ">", "threshold": 1, "for_ms": -5}])")),
                 IoError);  // negative window
}

}  // namespace
}  // namespace asilkit::obs

#include "analysis/cutsets.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "bdd/from_fault_tree.h"

namespace asilkit::analysis {
namespace {

using SetList = std::vector<CutSet>;

/// Union of two sorted sets.
CutSet merge_sets(const CutSet& a, const CutSet& b) {
    CutSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

/// Removes non-minimal (superset) entries; input entries are sorted sets.
void minimize(SetList& sets) {
    std::sort(sets.begin(), sets.end(), [](const CutSet& a, const CutSet& b) {
        if (a.size() != b.size()) return a.size() < b.size();
        return a < b;
    });
    sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
    SetList minimal;
    for (const CutSet& candidate : sets) {
        const bool dominated = std::any_of(
            minimal.begin(), minimal.end(), [&](const CutSet& kept) {
                return std::includes(candidate.begin(), candidate.end(), kept.begin(), kept.end());
            });
        if (!dominated) minimal.push_back(candidate);
    }
    sets = std::move(minimal);
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const ftree::FaultTree& ft, const CutSetOptions& options) {
    std::unordered_map<std::uint32_t, SetList> gate_memo;

    std::function<SetList(ftree::FtRef)> visit = [&](ftree::FtRef r) -> SetList {
        if (r.kind == ftree::FtRef::Kind::Basic) return {CutSet{r.index}};
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        SetList acc;
        if (g.kind == ftree::GateKind::Or) {
            for (ftree::FtRef c : g.children) {
                SetList child = visit(c);
                acc.insert(acc.end(), std::make_move_iterator(child.begin()),
                           std::make_move_iterator(child.end()));
                if (acc.size() > options.max_sets) {
                    throw AnalysisError("minimal_cut_sets: intermediate set count exceeds max_sets");
                }
            }
        } else {
            acc = {CutSet{}};
            for (ftree::FtRef c : g.children) {
                const SetList child = visit(c);
                SetList next;
                for (const CutSet& a : acc) {
                    for (const CutSet& b : child) {
                        CutSet merged = merge_sets(a, b);
                        if (merged.size() <= options.max_order) next.push_back(std::move(merged));
                    }
                    if (next.size() > options.max_sets) {
                        throw AnalysisError(
                            "minimal_cut_sets: intermediate set count exceeds max_sets");
                    }
                }
                acc = std::move(next);
            }
        }
        minimize(acc);
        gate_memo.emplace(r.index, acc);
        return acc;
    };

    SetList result = visit(ft.top());
    minimize(result);
    std::sort(result.begin(), result.end());
    return result;
}

double cut_set_probability_bound(const ftree::FaultTree& ft, const std::vector<CutSet>& cut_sets,
                                 double mission_hours) {
    double total = 0.0;
    for (const CutSet& cs : cut_sets) {
        double p = 1.0;
        for (std::uint32_t e : cs) {
            p *= bdd::basic_event_probability(ft.basic_event(e).lambda, mission_hours);
        }
        total += p;
    }
    return std::min(total, 1.0);
}

std::size_t minimal_cut_order(const std::vector<CutSet>& cut_sets) noexcept {
    std::size_t best = 0;
    for (const CutSet& cs : cut_sets) {
        if (best == 0 || cs.size() < best) best = cs.size();
    }
    return best;
}

CutSetLowerBound::CutSetLowerBound(std::vector<CutSet> cuts, std::vector<double> event_probability)
    : cuts_(std::move(cuts)), probs_(std::move(event_probability)) {
    const std::size_t k = cuts_.size();
    cut_prob_.resize(k);
    pair_sum_.assign(k, 0.0);
    postings_.resize(probs_.size());
    double max_single = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        cut_prob_[i] = set_probability(cuts_[i], {});
        s1_ += cut_prob_[i];
        sum_sq += cut_prob_[i] * cut_prob_[i];
        max_single = std::max(max_single, cut_prob_[i]);
        for (std::uint32_t e : cuts_[i]) {
            if (e >= postings_.size()) throw AnalysisError("CutSetLowerBound: event index out of range");
            postings_[e].push_back(static_cast<std::uint32_t>(i));
        }
    }
    by_prob_desc_.resize(k);
    for (std::size_t i = 0; i < k; ++i) by_prob_desc_[i] = static_cast<std::uint32_t>(i);
    std::sort(by_prob_desc_.begin(), by_prob_desc_.end(), [&](std::uint32_t a, std::uint32_t b) {
        if (cut_prob_[a] != cut_prob_[b]) return cut_prob_[a] > cut_prob_[b];
        return a < b;
    });

    // S2 over all pairs, factorised: independent pairs contribute
    // P(C_i) * P(C_j), summed in closed form as (S1^2 - sum P^2) / 2.
    // Only pairs sharing at least one event deviate from the product —
    // their exact joint probability divides the shared events out, so
    // the (nonnegative) correction is applied per unique sharing pair,
    // enumerated through the postings index.
    s2_ = std::max(0.0, (s1_ * s1_ - sum_sq) * 0.5);
    for (std::size_t i = 0; i < k; ++i) pair_sum_[i] = cut_prob_[i] * (s1_ - cut_prob_[i]);
    std::vector<std::uint64_t> sharing;
    for (const std::vector<std::uint32_t>& posts : postings_) {
        for (std::size_t x = 0; x < posts.size(); ++x) {
            for (std::size_t y = x + 1; y < posts.size(); ++y) {
                sharing.push_back((static_cast<std::uint64_t>(posts[x]) << 32) | posts[y]);
            }
        }
    }
    std::sort(sharing.begin(), sharing.end());
    sharing.erase(std::unique(sharing.begin(), sharing.end()), sharing.end());
    for (const std::uint64_t key : sharing) {
        const auto i = static_cast<std::uint32_t>(key >> 32);
        const auto j = static_cast<std::uint32_t>(key);
        const double correction =
            pair_probability(cuts_[i], cuts_[j], {}) - cut_prob_[i] * cut_prob_[j];
        pair_sum_[i] += correction;
        pair_sum_[j] += correction;
        s2_ += correction;
    }
    base_bound_ = std::min(std::max({0.0, max_single, s1_ - s2_}), 1.0);
}

const std::vector<std::uint32_t>& CutSetLowerBound::cuts_containing(std::uint32_t e) const noexcept {
    static const std::vector<std::uint32_t> kEmpty;
    return e < postings_.size() ? postings_[e] : kEmpty;
}

double CutSetLowerBound::priced(std::uint32_t e,
                                const std::vector<std::pair<std::uint32_t, double>>& ov) const {
    for (const auto& [event, p] : ov) {
        if (event == e) return p;
    }
    return probs_[e];
}

double CutSetLowerBound::set_probability(
    const CutSet& cs, const std::vector<std::pair<std::uint32_t, double>>& ov) const {
    double p = 1.0;
    for (std::uint32_t e : cs) p *= priced(e, ov);
    return p;
}

double CutSetLowerBound::pair_probability(
    const CutSet& a, const CutSet& b,
    const std::vector<std::pair<std::uint32_t, double>>& ov) const {
    // Product over the union of the two (sorted) event sets.
    double p = 1.0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
            p *= priced(a[i], ov);
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            p *= priced(a[i++], ov);
        } else {
            p *= priced(b[j++], ov);
        }
    }
    for (; i < a.size(); ++i) p *= priced(a[i], ov);
    for (; j < b.size(); ++j) p *= priced(b[j], ov);
    return p;
}

double CutSetLowerBound::rebound(const Substitution& s) const {
    const auto is_affected = [&](std::size_t i) {
        return std::binary_search(s.affected.begin(), s.affected.end(),
                                  static_cast<std::uint32_t>(i));
    };

    // S1' = S1 - (affected mass) + (replacement mass).  The best single
    // surviving cut is the first unaffected index in probability order.
    double s1 = s1_;
    for (std::uint32_t i : s.affected) s1 -= cut_prob_[i];
    const double s1_surviving = s1;
    double max_single = 0.0;
    for (std::uint32_t i : by_prob_desc_) {
        if (!is_affected(i)) {
            max_single = cut_prob_[i];
            break;
        }
    }
    std::vector<double> repl_prob;
    repl_prob.reserve(s.replacements.size());
    for (const CutSet& r : s.replacements) {
        const double p = set_probability(r, s.overrides);
        repl_prob.push_back(p);
        s1 += p;
        max_single = std::max(max_single, p);
    }

    // Pairs lost: every pair with at least one affected endpoint, i.e.
    // sum of affected T_i minus the double-counted affected-affected pairs.
    double removed = 0.0;
    for (std::uint32_t i : s.affected) removed += pair_sum_[i];
    for (std::size_t x = 0; x < s.affected.size(); ++x) {
        for (std::size_t y = x + 1; y < s.affected.size(); ++y) {
            removed -= pair_probability(cuts_[s.affected[x]], cuts_[s.affected[y]], {});
        }
    }

    // Pairs gained: replacement x surviving-original and replacement x
    // replacement.  A replacement sharing no events with a surviving cut
    // contributes exactly P(r) * P(C_j), so the whole surviving sweep
    // collapses to P(r) * S1_surviving; only the cuts the postings index
    // lists for r's events need the exact joint probability.  Surviving
    // cuts contain no overridden events (substitution precondition), so
    // their stored probabilities price the products correctly.
    double added = 0.0;
    std::vector<std::uint32_t> sharing;
    for (std::size_t x = 0; x < s.replacements.size(); ++x) {
        const CutSet& r = s.replacements[x];
        if (repl_prob[x] == 0.0) continue;  // every pair with r has probability 0
        added += repl_prob[x] * s1_surviving;
        sharing.clear();
        for (std::uint32_t e : r) {
            const std::vector<std::uint32_t>& posts = postings_[e];
            sharing.insert(sharing.end(), posts.begin(), posts.end());
        }
        std::sort(sharing.begin(), sharing.end());
        sharing.erase(std::unique(sharing.begin(), sharing.end()), sharing.end());
        for (std::uint32_t j : sharing) {
            if (is_affected(j)) continue;
            added += pair_probability(r, cuts_[j], s.overrides) - repl_prob[x] * cut_prob_[j];
        }
    }
    for (std::size_t x = 0; x < s.replacements.size(); ++x) {
        for (std::size_t y = x + 1; y < s.replacements.size(); ++y) {
            added += pair_probability(s.replacements[x], s.replacements[y], s.overrides);
        }
    }

    const double s2 = s2_ - removed + added;
    return std::min(std::max({0.0, max_single, s1 - s2}), 1.0);
}

std::vector<double> basic_event_probabilities(const ftree::FaultTree& ft, double mission_hours) {
    std::vector<double> probs;
    probs.reserve(ft.basic_events().size());
    for (const ftree::BasicEvent& e : ft.basic_events()) {
        probs.push_back(bdd::basic_event_probability(e.lambda, mission_hours));
    }
    return probs;
}

}  // namespace asilkit::analysis

# Empty dependencies file for bench_fig3_fault_tree.
# This may be replaced when dependencies are built.

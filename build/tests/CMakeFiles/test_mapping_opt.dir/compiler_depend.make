# Empty compiler generated dependencies file for test_mapping_opt.
# This may be replaced when dependencies are built.

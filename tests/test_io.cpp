#include <gtest/gtest.h>

#include <fstream>

#include "ftree/builder.h"
#include "io/csv.h"
#include "io/dot.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"

namespace asilkit::io {
namespace {

TEST(Dot, AppGraphContainsNodesAndEdges) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const std::string dot = app_graph_to_dot(m);
    EXPECT_NE(dot.find("digraph application"), std::string::npos);
    EXPECT_NE(dot.find("sens"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("shape=house"), std::string::npos);      // sensor
    EXPECT_NE(dot.find("shape=invhouse"), std::string::npos);   // actuator
    EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, AppGraphShowsAsilTags) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    m.app().node(m.find_app_node("n")).asil = AsilTag{Asil::B, Asil::D};
    const std::string dot = app_graph_to_dot(m);
    EXPECT_NE(dot.find("B(D)"), std::string::npos);
}

TEST(Dot, SplitterMergerShapes) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const std::string dot = app_graph_to_dot(m);
    EXPECT_NE(dot.find("shape=triangle"), std::string::npos);
    EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);
}

TEST(Dot, ResourceAndPhysicalGraphs) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const std::string res = resource_graph_to_dot(m);
    EXPECT_NE(res.find("digraph resources"), std::string::npos);
    EXPECT_NE(res.find("ecu1"), std::string::npos);
    const std::string phy = physical_graph_to_dot(m);
    EXPECT_NE(phy.find("graph physical"), std::string::npos);
    EXPECT_NE(phy.find("c4_duct_front_rear"), std::string::npos);
}

TEST(Dot, FaultTreeExport) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto ft = ftree::build_fault_tree(m);
    const std::string dot = fault_tree_to_dot(ft.tree);
    EXPECT_NE(dot.find("digraph fault_tree"), std::string::npos);
    EXPECT_NE(dot.find("res:camera_hw"), std::string::npos);
    EXPECT_NE(dot.find("AND"), std::string::npos);
    EXPECT_NE(dot.find("OR"), std::string::npos);
    EXPECT_NE(dot.find("shape=circle"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
    ArchitectureModel m("quote");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    m.add_node_with_dedicated_resource({"evil\"name", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const std::string dot = app_graph_to_dot(m);
    EXPECT_NE(dot.find("evil\\\"name"), std::string::npos);
}

TEST(Dot, SaveTextFile) {
    const std::string path = ::testing::TempDir() + "/asilkit_dot_test.dot";
    save_text_file("digraph g {}\n", path);
    EXPECT_NO_THROW((void)save_text_file("x", path));
    EXPECT_THROW((void)save_text_file("x", "/nonexistent/dir/file.dot"), IoError);
}

TEST(Csv, HeaderAndRows) {
    CsvWriter csv({"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
    EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, WidthMismatchThrows) {
    CsvWriter csv({"a", "b"});
    EXPECT_THROW((void)csv.add_row({"1"}), IoError);
    EXPECT_THROW((void)csv.add_row({"1", "2", "3"}), IoError);
    EXPECT_THROW((void)CsvWriter({}), IoError);
}

TEST(Csv, QuotingRfc4180) {
    CsvWriter csv({"x"});
    csv.add_row({"plain"});
    csv.add_row({"with,comma"});
    csv.add_row({"with\"quote"});
    csv.add_row({"with\nnewline"});
    EXPECT_EQ(csv.to_string(), "x\nplain\n\"with,comma\"\n\"with\"\"quote\"\n\"with\nnewline\"\n");
}

TEST(Csv, NumberFormatting) {
    EXPECT_EQ(CsvWriter::number(1.0), "1");
    EXPECT_EQ(CsvWriter::number(1e-9), "1e-09");
    EXPECT_EQ(CsvWriter::number(998800), "998800");
}

TEST(Csv, SaveFile) {
    const std::string path = ::testing::TempDir() + "/asilkit_csv_test.csv";
    CsvWriter csv({"label", "value"});
    csv.add_row({"cost", CsvWriter::number(998800)});
    csv.save(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "label,value");
    EXPECT_THROW((void)csv.save("/nonexistent/dir/file.csv"), IoError);
}

}  // namespace
}  // namespace asilkit::io

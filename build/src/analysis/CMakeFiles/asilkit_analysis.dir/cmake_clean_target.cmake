file(REMOVE_RECURSE
  "libasilkit_analysis.a"
)

#include "bdd/from_fault_tree.h"

#include <cmath>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/hash.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::bdd {

using ftree::FaultTree;
using ftree::FtRef;
using ftree::GateKind;

namespace {

// Subtree-memo key salts: keys mix gate kinds with the leaves' local
// BDD variable indices, so the key space is disjoint by construction
// from every other 64-bit key family in the codebase.
constexpr std::uint64_t kMemoVarSalt = 0x766172696478ull;   // "varidx"
constexpr std::uint64_t kMemoGateSalt = 0x6D656D6F67ull;    // "memog"

/// "No variable" sentinel of the index-addressed lookup tables below.
constexpr std::uint32_t kNoVar = 0xFFFFFFFFu;

/// The paper's local variable order of one module: BFS from the module
/// root, leaves (basic events and pseudo-variables) numbered in
/// first-seen order.  Shared by the fresh-manager and the persistent
/// evaluation paths so both run the identical ordering by construction.
/// Lookup tables are index-addressed (kNoVar = absent): this runs once
/// per module per candidate, and hash-map traffic dominated it.
struct ModuleOrdering {
    std::vector<std::uint32_t> var_of_event;   ///< by basic-event index
    std::vector<std::uint32_t> var_of_pseudo;  ///< by gate index
    struct Leaf {
        bool pseudo = false;
        /// Basic-event index, or (pseudo) position in mod.child_modules.
        std::uint32_t index = 0;
    };
    std::vector<Leaf> leaves;  // in variable order
    std::size_t real_events = 0;
};

ModuleOrdering module_ordering(const FaultTree& ft, const ftree::ModuleDecomposition& dec,
                               const ftree::Module& mod) {
    ModuleOrdering ord;
    ord.var_of_event.assign(ft.basic_events().size(), kNoVar);
    ord.var_of_pseudo.assign(ft.gates().size(), kNoVar);
    std::vector<std::uint32_t> pseudo_pos(ft.gates().size(), kNoVar);  // gate -> child position
    for (std::size_t i = 0; i < mod.child_modules.size(); ++i) {
        pseudo_pos[dec.modules[mod.child_modules[i]].root.index] = static_cast<std::uint32_t>(i);
    }
    std::vector<char> seen_gates(ft.gates().size(), 0);
    seen_gates[mod.root.index] = 1;
    std::vector<FtRef> queue{mod.root};
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const FtRef r = queue[head];
        for (FtRef c : ft.gate(r.index).children) {
            if (c.kind == FtRef::Kind::Basic) {
                if (ord.var_of_event[c.index] == kNoVar) {
                    ord.var_of_event[c.index] = static_cast<std::uint32_t>(ord.leaves.size());
                    ord.leaves.push_back({false, c.index});
                    ++ord.real_events;
                }
                continue;
            }
            if (pseudo_pos[c.index] != kNoVar) {
                if (ord.var_of_pseudo[c.index] == kNoVar) {
                    ord.var_of_pseudo[c.index] = static_cast<std::uint32_t>(ord.leaves.size());
                    ord.leaves.push_back({true, pseudo_pos[c.index]});
                }
                continue;
            }
            if (seen_gates[c.index] == 0) {
                seen_gates[c.index] = 1;
                queue.push_back(c);
            }
        }
    }
    return ord;
}

/// Compiles `root` into `manager` with the persistent subtree memo:
/// each gate is keyed by its structure over the leaves' variable
/// indices (kind, ordered child keys; leaf key = variable index), and a
/// key hit returns the memoised ref without touching the subtree.
/// Sound by ROBDD canonicity — recompiling a structurally identical
/// gate over the same variables returns the same ref — modulo 64-bit
/// key collisions, the same exposure class as the engine's eval cache.
/// `leaf_var(r)` returns the variable index for leaves (basic events
/// and, in module regions, pseudo-variables), nullopt for gates.
template <typename LeafVar>
BddRef compile_with_memo(BddManager& manager, std::unordered_map<std::uint64_t, BddRef>& memo,
                         const FaultTree& ft, FtRef root, LeafVar&& leaf_var,
                         std::uint64_t& hits, std::uint64_t& misses) {
    // Per-call DAG-sharing scratch, index-addressed by gate: on a full
    // memo hit (the steady state of a rotating-variant sweep) the whole
    // call is one key recursion + one memo lookup, so per-gate hash-map
    // traffic here would dominate it.
    const std::size_t ngates = ft.gates().size();
    std::vector<std::uint64_t> gate_key(ngates, 0);
    std::vector<char> gate_key_set(ngates, 0);
    const auto key_of = [&](auto&& self, FtRef r) -> std::uint64_t {
        if (const std::optional<std::uint32_t> v = leaf_var(r)) {
            return hash::combine(kMemoVarSalt, *v);
        }
        if (gate_key_set[r.index] != 0) return gate_key[r.index];
        const ftree::Gate& g = ft.gate(r.index);
        std::uint64_t h = hash::combine(kMemoGateSalt, static_cast<std::uint64_t>(g.kind));
        for (FtRef c : g.children) h = hash::combine(h, self(self, c));
        gate_key[r.index] = h;
        gate_key_set[r.index] = 1;
        return h;
    };
    std::vector<BddRef> gate_done(ngates, kFalse);
    std::vector<char> gate_done_set(ngates, 0);
    const auto comp = [&](auto&& self, FtRef r) -> BddRef {
        if (const std::optional<std::uint32_t> v = leaf_var(r)) return manager.variable(*v);
        if (gate_done_set[r.index] != 0) return gate_done[r.index];
        const std::uint64_t key = key_of(key_of, r);
        if (const auto it = memo.find(key); it != memo.end()) {
            ++hits;
            gate_done[r.index] = it->second;
            gate_done_set[r.index] = 1;
            return it->second;
        }
        const ftree::Gate& g = ft.gate(r.index);
        BddRef acc = kFalse;
        bool first = true;
        for (FtRef c : g.children) {
            const BddRef cb = self(self, c);
            if (first) {
                acc = cb;
                first = false;
            } else {
                acc = manager.apply(g.kind == GateKind::Or ? BddOp::Or : BddOp::And, acc, cb);
            }
        }
        ++misses;
        memo.emplace(key, acc);
        gate_done[r.index] = acc;
        gate_done_set[r.index] = 1;
        return acc;
    };
    return comp(comp, root);
}

}  // namespace

std::vector<std::uint32_t> ft_variable_order(const FaultTree& ft) {
    // Index-addressed seen flags and a head-cursor queue: this BFS runs
    // once per persistent compile, where it outweighs a full-memo-hit
    // compilation itself.
    std::vector<std::uint32_t> order;
    std::vector<char> seen_events(ft.basic_events().size(), 0);
    std::vector<char> seen_gates(ft.gates().size(), 0);
    std::vector<FtRef> queue{ft.top()};
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const FtRef r = queue[head];
        if (r.kind == FtRef::Kind::Basic) {
            if (seen_events[r.index] == 0) {
                seen_events[r.index] = 1;
                order.push_back(r.index);
            }
            continue;
        }
        if (seen_gates[r.index] != 0) continue;
        seen_gates[r.index] = 1;
        for (FtRef c : ft.gate(r.index).children) queue.push_back(c);
    }
    return order;
}

CompiledFaultTree compile_fault_tree(const FaultTree& ft) {
    return compile_fault_tree(ft, ft_variable_order(ft));
}

CompiledFaultTree compile_fault_tree(const FaultTree& ft,
                                     const std::vector<std::uint32_t>& event_order) {
    CompiledFaultTree out{BddManager{static_cast<std::uint32_t>(event_order.size())}, kFalse,
                          event_order};
    std::unordered_map<std::uint32_t, std::uint32_t> var_of_event;
    for (std::uint32_t v = 0; v < event_order.size(); ++v) {
        var_of_event.emplace(event_order[v], v);
    }

    std::unordered_map<std::uint32_t, BddRef> gate_memo;
    std::function<BddRef(FtRef)> compile = [&](FtRef r) -> BddRef {
        if (r.kind == FtRef::Kind::Basic) {
            const auto it = var_of_event.find(r.index);
            if (it == var_of_event.end()) {
                throw AnalysisError("compile_fault_tree: event '" +
                                    ft.basic_event(r.index).name + "' missing from ordering");
            }
            return out.manager.variable(it->second);
        }
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        // A failure gate with no children has no failure mode: constant 0
        // for both gate kinds (fault-tree semantics, not boolean algebra).
        BddRef acc = kFalse;
        bool first = true;
        for (FtRef c : g.children) {
            const BddRef cb = compile(c);
            if (first) {
                acc = cb;
                first = false;
            } else {
                acc = out.manager.apply(g.kind == GateKind::Or ? BddOp::Or : BddOp::And, acc, cb);
            }
        }
        gate_memo.emplace(r.index, acc);
        return acc;
    };
    out.root = compile(ft.top());
    return out;
}

double basic_event_probability(double lambda, double hours) noexcept {
    return 1.0 - std::exp(-lambda * hours);
}

std::vector<double> CompiledFaultTree::variable_probabilities(const FaultTree& ft,
                                                              double hours) const {
    std::vector<double> probs;
    probs.reserve(event_of_var.size());
    for (std::uint32_t event : event_of_var) {
        probs.push_back(basic_event_probability(ft.basic_event(event).lambda, hours));
    }
    return probs;
}

ModuleEvalResult evaluate_module(const FaultTree& ft, const ftree::ModuleDecomposition& dec,
                                 std::size_t module_index,
                                 std::span<const double> child_probabilities,
                                 double mission_hours) {
    const obs::ObsSpan span("evaluate_module", "bdd", "module",
                            static_cast<double>(module_index));
    const ftree::Module& mod = dec.modules.at(module_index);
    if (child_probabilities.size() != mod.child_modules.size()) {
        throw AnalysisError("evaluate_module: child probability count mismatch");
    }
    ModuleEvalResult out;
    if (mod.root.kind == FtRef::Kind::Basic) {
        // Leaf module: the whole tree is one basic event.
        out.probability = basic_event_probability(ft.basic_event(mod.root.index).lambda,
                                                  mission_hours);
        out.variables = 1;
        out.bdd_nodes = 1;
        out.bdd_total_nodes = 1;
        return out;
    }

    // Local variable order: BFS from the module root, leaves (basic
    // events and pseudo-variables) numbered in first-seen order —
    // the paper's ordering restricted to the module.
    const ModuleOrdering ord = module_ordering(ft, dec, mod);
    std::vector<double> probs(ord.leaves.size());
    for (std::size_t v = 0; v < ord.leaves.size(); ++v) {
        const ModuleOrdering::Leaf& leaf = ord.leaves[v];
        probs[v] = leaf.pseudo
                       ? child_probabilities[leaf.index]
                       : basic_event_probability(ft.basic_event(leaf.index).lambda, mission_hours);
    }

    BddManager manager(static_cast<std::uint32_t>(probs.size()));
    std::unordered_map<std::uint32_t, BddRef> gate_memo;
    std::function<BddRef(FtRef)> compile = [&](FtRef r) -> BddRef {
        if (r.kind == FtRef::Kind::Basic) return manager.variable(ord.var_of_event[r.index]);
        if (ord.var_of_pseudo[r.index] != kNoVar) {
            return manager.variable(ord.var_of_pseudo[r.index]);
        }
        if (const auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        BddRef acc = kFalse;
        bool first = true;
        for (FtRef c : g.children) {
            const BddRef cb = compile(c);
            if (first) {
                acc = cb;
                first = false;
            } else {
                acc = manager.apply(g.kind == GateKind::Or ? BddOp::Or : BddOp::And, acc, cb);
            }
        }
        gate_memo.emplace(r.index, acc);
        return acc;
    };
    const BddRef root = compile(mod.root);
    out.probability = manager.probability(root, probs);
    out.bdd_nodes = manager.node_count(root);
    out.bdd_total_nodes = manager.size();
    out.variables = ord.real_events;
    manager.flush_obs();
    return out;
}

// ---------------------------------------------------------------------------
// PersistentBddCompiler

PersistentBddCompiler::PersistentBddCompiler(Options options)
    : gc_threshold_(options.gc_node_threshold) {
    manager_.set_gc_threshold(gc_threshold_);
}

void PersistentBddCompiler::maybe_collect() {
    if (!manager_.gc_due()) return;
    // Safe point: the memo holds the compiler's only roots; drop it so
    // the collection keeps just the callers' pinned diagrams.
    memo_.clear();
    manager_.collect();
}

void PersistentBddCompiler::flush_obs() {
    auto& reg = obs::Registry::global();
    if (memo_hits_ != flushed_hits_) {
        reg.counter("bdd.subtree_memo_hits").add(memo_hits_ - flushed_hits_);
        flushed_hits_ = memo_hits_;
    }
    if (memo_misses_ != flushed_misses_) {
        reg.counter("bdd.subtree_memo_misses").add(memo_misses_ - flushed_misses_);
        flushed_misses_ = memo_misses_;
    }
    manager_.flush_obs();
}

PersistentBddCompiler::CompileResult PersistentBddCompiler::compile(const FaultTree& ft) {
    maybe_collect();
    CompileResult out;
    out.event_of_var = ft_variable_order(ft);
    manager_.ensure_variables(static_cast<std::uint32_t>(out.event_of_var.size()));
    std::vector<std::uint32_t> var_of_event(ft.basic_events().size(), kNoVar);
    for (std::uint32_t v = 0; v < out.event_of_var.size(); ++v) {
        var_of_event[out.event_of_var[v]] = v;
    }
    const std::size_t nodes_before = manager_.size();
    out.root = compile_with_memo(
        manager_, memo_, ft, ft.top(),
        [&](FtRef r) -> std::optional<std::uint32_t> {
            if (r.kind != FtRef::Kind::Basic) return std::nullopt;
            return var_of_event[r.index];
        },
        memo_hits_, memo_misses_);
    out.nodes_allocated = manager_.size() - nodes_before;
    flush_obs();
    return out;
}

std::vector<double> PersistentBddCompiler::variable_probabilities(
    const FaultTree& ft, std::span<const std::uint32_t> event_of_var, double hours) {
    std::vector<double> probs;
    probs.reserve(event_of_var.size());
    for (std::uint32_t event : event_of_var) {
        probs.push_back(basic_event_probability(ft.basic_event(event).lambda, hours));
    }
    return probs;
}

ModuleEvalResult PersistentBddCompiler::evaluate_module(const FaultTree& ft,
                                                        const ftree::ModuleDecomposition& dec,
                                                        std::size_t module_index,
                                                        std::span<const double> child_probabilities,
                                                        double mission_hours) {
    const FaultTree* trees[1] = {&ft};
    const std::span<const double> child_probs[1] = {child_probabilities};
    return evaluate_module_lanes(trees, dec, module_index, child_probs, mission_hours).front();
}

std::vector<ModuleEvalResult> PersistentBddCompiler::evaluate_module_lanes(
    std::span<const ftree::FaultTree* const> lane_trees, const ftree::ModuleDecomposition& dec,
    std::size_t module_index, std::span<const std::span<const double>> lane_child_probabilities,
    double mission_hours) {
    const std::size_t k = lane_trees.size();
    if (k == 0) throw AnalysisError("evaluate_module_lanes: no lanes");
    if (lane_child_probabilities.size() != k) {
        throw AnalysisError("evaluate_module_lanes: lane/probability count mismatch");
    }
    const ftree::Module& mod = dec.modules.at(module_index);
    for (std::size_t j = 0; j < k; ++j) {
        if (lane_child_probabilities[j].size() != mod.child_modules.size()) {
            throw AnalysisError("evaluate_module_lanes: child probability count mismatch");
        }
    }
    std::vector<ModuleEvalResult> out(k);
    if (mod.root.kind == FtRef::Kind::Basic) {
        // Leaf module: the whole tree is one basic event (per-lane rate).
        for (std::size_t j = 0; j < k; ++j) {
            out[j].probability = basic_event_probability(
                lane_trees[j]->basic_event(mod.root.index).lambda, mission_hours);
            out[j].variables = 1;
            out[j].bdd_nodes = 1;
            out[j].bdd_total_nodes = 1;
        }
        return out;
    }

    const obs::ObsSpan span("evaluate_module", "bdd", "module",
                            static_cast<double>(module_index));
    maybe_collect();
    const FaultTree& rep = *lane_trees.front();
    const ModuleOrdering ord = module_ordering(rep, dec, mod);
    const std::uint32_t nvars = static_cast<std::uint32_t>(ord.leaves.size());
    manager_.ensure_variables(nvars);

    const std::size_t nodes_before = manager_.size();
    const BddRef root = compile_with_memo(
        manager_, memo_, rep, mod.root,
        [&](FtRef r) -> std::optional<std::uint32_t> {
            if (r.kind == FtRef::Kind::Basic) return ord.var_of_event[r.index];
            if (const std::uint32_t v = ord.var_of_pseudo[r.index]; v != kNoVar) return v;
            return std::nullopt;
        },
        memo_hits_, memo_misses_);
    const std::size_t allocated = manager_.size() - nodes_before;

    // One probability vector per lane, in the shared variable order:
    // shape-identical lanes differ only in rates (and pseudo-variable
    // probabilities), so event/child indices address every lane.
    std::vector<ProbVector> lanes(k, ProbVector(nvars));
    for (std::uint32_t v = 0; v < nvars; ++v) {
        const ModuleOrdering::Leaf& leaf = ord.leaves[v];
        if (leaf.pseudo) {
            for (std::size_t j = 0; j < k; ++j) {
                lanes[j][v] = lane_child_probabilities[j][leaf.index];
            }
        } else {
            for (std::size_t j = 0; j < k; ++j) {
                lanes[j][v] = basic_event_probability(
                    lane_trees[j]->basic_event(leaf.index).lambda, mission_hours);
            }
        }
    }
    const std::vector<double> probabilities = manager_.probability_batch(root, lanes);
    const std::size_t reachable = manager_.node_count(root);
    for (std::size_t j = 0; j < k; ++j) {
        out[j].probability = probabilities[j];
        out[j].bdd_nodes = reachable;
        out[j].bdd_total_nodes = allocated;
        out[j].variables = ord.real_events;
    }
    flush_obs();
    return out;
}

PersistentBddCompiler::Stats PersistentBddCompiler::stats() const noexcept {
    Stats s;
    s.memo_hits = memo_hits_;
    s.memo_misses = memo_misses_;
    s.collections = manager_.gc_collections();
    s.memo_entries = memo_.size();
    s.manager_nodes = manager_.size();
    return s;
}

}  // namespace asilkit::bdd

// Mapping search (paper Section VII-B closing remark: "Advanced mapping
// algorithms can be used to identify the minimum set of necessary
// resources to achieve the minimum failure probability for the system,
// but we defer these techniques to future work").
//
// A steepest-descent local search over resource-merge moves: two
// resources of the same kind hosting nodes of the same *region* (the same
// redundant branch, or both outside any branch) may be merged when the
// combined utilisation stays within capacity.  Candidate moves flow
// through a staged generate -> bound-check -> lint -> evaluate pipeline:
// admissible lower bounds (explore/bounds.h) order the candidates
// best-bound-first and prove most of them unable to beat the incumbent
// before any fault-tree/BDD work; the survivors are evaluated on the real
// objective — exact BDD failure probability first, architecture cost
// second — and the best improving move is applied until a local optimum
// is reached.  The search is *anytime*: every accepted state streams
// through a best-front-so-far (ParetoTracker) the caller can observe via
// on_front_update.  Cross-branch merges are never candidates: they would
// introduce the Common Cause Faults the CCF analysis rejects.
//
// Exactness contract: bound pruning, the lint pre-filter, the engine's
// candidate dedup and its incremental component-fragment tree
// generation (docs/ftree.md) only skip work that provably cannot change
// the outcome — the searched model, every objective and the emitted
// front are bitwise identical with each feature on or off, at any
// thread count (docs/explore.md gives the arguments; the tests in
// tests/test_mapping_search.cpp enforce them at threads 1/2/4/8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/probability.h"
#include "cost/cost_metric.h"
#include "engine/engine.h"
#include "explore/pareto.h"
#include "model/architecture.h"

namespace asilkit::explore {

namespace detail {

/// Packs a (merger id, branch index) pair into one collision-free 64-bit
/// region id.  Both halves must fit 32 bits and the merger id must be a
/// valid NodeId (not the all-ones sentinel) — so the result can never
/// alias another pair or the trunk region (~0); throws ModelError
/// otherwise.
[[nodiscard]] std::uint64_t pack_region_id(std::uint64_t merger, std::uint64_t branch);

}  // namespace detail

struct MappingSearchOptions {
    /// Capacity limit: a shared resource may host at most this many
    /// application nodes (models ECU utilisation / bus load headroom).
    std::size_t max_nodes_per_resource = 4;
    cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions probability{};
    std::size_t max_iterations = 200;
    /// Also consider merging resources of trunk (non-branch) nodes.
    bool include_non_branch_nodes = true;
    /// Candidate evaluation: thread count and eval-cache capacity.  All
    /// surviving candidate merges are scored in parallel batches; the
    /// best improving move is still selected and applied serially, so
    /// the search is deterministic in the thread count.
    engine::EngineOptions engine{};
    /// Run the structural linter (lint::structural_error_count) on every
    /// candidate before fault-tree generation and reject candidates that
    /// introduce a *new* error-severity finding over the iteration's
    /// baseline.  A rejected candidate scores +infinity, which the
    /// selection can never pick — so results are bitwise identical with
    /// the pre-filter on or off, at any thread count; the filter only
    /// skips evaluations that could not have won.
    bool lint_prefilter = true;
    /// Bound-check stage: compute admissible (cost, probability) lower
    /// bounds for every candidate from the current model's minimal cut
    /// sets and Table II metric (explore/bounds.h), evaluate candidates
    /// best-bound-first, and stop as soon as the next bound proves no
    /// remaining candidate can beat the best evaluated move.  Because
    /// each bound never exceeds its candidate's exact objective, the
    /// selected move — and therefore the entire search — is bitwise
    /// identical with pruning on or off; only `evaluations` shrinks.
    /// Pruned candidates count into MappingSearchResult::bound_rejections
    /// ("explore.bound_rejections").
    bool bound_pruning = true;
    /// Anytime front streaming: every accepted state (and the initial
    /// one) is offered to a best-front-so-far; when it changes, the new
    /// point is reported here together with the updated front size.
    /// Called synchronously from the search thread, in walk order.
    std::function<void(const TradeoffPoint& point, std::size_t front_size)> on_front_update;
    /// Optional caller-owned tracker to accumulate the front across
    /// several searches (e.g. a trade-off sweep); defaults to a tracker
    /// local to this call, whose front lands in
    /// MappingSearchResult::front either way.
    ParetoTracker* front_tracker = nullptr;
};

struct MappingSearchResult {
    std::size_t merges = 0;
    std::size_t iterations = 0;
    double probability_before = 0.0;
    double probability_after = 0.0;
    double cost_before = 0.0;
    double cost_after = 0.0;
    bool reached_local_optimum = false;
    /// Candidate evaluations performed (engine analyze calls; equals
    /// whole-tree cache hits + misses, since every call keys the tree).
    std::uint64_t evaluations = 0;
    /// Whole-tree cache counters: a hit replays a previously scored
    /// candidate without recompiling anything.
    std::uint64_t eval_cache_hits = 0;
    std::uint64_t eval_cache_misses = 0;
    /// Per-module cache counters (zero when options.engine.modularize is
    /// off): within the eval_cache_misses above, module hits are regions
    /// replayed from earlier candidates, module misses are the regions
    /// actually recompiled.
    std::uint64_t module_cache_hits = 0;
    std::uint64_t module_cache_misses = 0;
    /// Candidates the lint pre-filter rejected before fault-tree
    /// generation (0 when options.lint_prefilter is off).
    std::uint64_t lint_rejections = 0;
    /// Candidates pruned by the bound check without any fault-tree/BDD
    /// work (0 when options.bound_pruning is off).
    std::uint64_t bound_rejections = 0;
    /// Evaluations the engine served from its non-evicting candidate
    /// memo after an LRU miss (subset of eval_cache_hits; 0 with
    /// options.engine.candidate_dedup off).
    std::uint64_t dedup_hits = 0;
    /// Incremental fault-tree generation counters (zero with
    /// options.engine.incremental_ftree off): component fragments the
    /// per-thread builders regenerated vs reused by reference, and
    /// candidate trees served whole from the finished-composition memo
    /// (those construct zero gates).  Scheduling-dependent at threads
    /// > 1 — which thread's builder sees a candidate first varies —
    /// unlike the searched model and objectives, which never vary.
    std::uint64_t fragments_built = 0;
    std::uint64_t fragments_reused = 0;
    std::uint64_t ftree_memo_hits = 0;
    /// Front changes streamed during this search (>= 1: the initial
    /// state always enters an empty front).
    std::uint64_t front_updates = 0;
    /// Best front so far at the end of the search: the non-dominated
    /// (cost, probability) states of the walk, ascending cost.  When
    /// options.front_tracker is set, this is that tracker's front —
    /// including points from earlier searches feeding it.
    std::vector<TradeoffPoint> front;

    [[nodiscard]] double eval_cache_hit_rate() const noexcept {
        return evaluations == 0
                   ? 0.0
                   : static_cast<double>(eval_cache_hits) / static_cast<double>(evaluations);
    }
    /// Fraction of all cached lookups (tree + module) that hit: the
    /// share of work the caches absorbed at whichever granularity.
    [[nodiscard]] double combined_cache_hit_rate() const noexcept {
        const std::uint64_t hits = eval_cache_hits + module_cache_hits;
        const std::uint64_t total = hits + eval_cache_misses + module_cache_misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/// Runs the search in place; the model's mapping (and resource set) is
/// modified, the application graph is not.
MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options = {});

/// Same, but on a caller-owned engine: repeated searches (e.g. across a
/// tradeoff sweep) share the pool, the evaluation cache and the
/// candidate-dedup memo.  The result's eval counters cover only this
/// call.
MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options,
                                   engine::EvalEngine& engine);

}  // namespace asilkit::explore

#include "io/graphml.h"

#include <sstream>

#include "model/failure_rates.h"

namespace asilkit::io {
namespace {

std::string xml_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out += c;
        }
    }
    return out;
}

void open_document(std::ostringstream& os) {
    os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
       << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
}

void declare_key(std::ostringstream& os, const char* id, const char* name, const char* type) {
    os << "  <key id=\"" << id << "\" for=\"node\" attr.name=\"" << name << "\" attr.type=\""
       << type << "\"/>\n";
}

}  // namespace

std::string app_graph_to_graphml(const ArchitectureModel& m) {
    std::ostringstream os;
    open_document(os);
    declare_key(os, "d_name", "name", "string");
    declare_key(os, "d_kind", "kind", "string");
    declare_key(os, "d_asil", "asil", "string");
    declare_key(os, "d_fsr", "fsr", "string");
    os << "  <graph id=\"application\" edgedefault=\"directed\">\n";
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        os << "    <node id=\"n" << n.value() << "\">\n"
           << "      <data key=\"d_name\">" << xml_escape(node.name) << "</data>\n"
           << "      <data key=\"d_kind\">" << to_string(node.kind) << "</data>\n"
           << "      <data key=\"d_asil\">" << xml_escape(to_string(node.asil)) << "</data>\n";
        if (!node.fsr.empty()) {
            os << "      <data key=\"d_fsr\">" << xml_escape(node.fsr) << "</data>\n";
        }
        os << "    </node>\n";
    }
    for (ChannelId e : m.app().edge_ids()) {
        const auto& edge = m.app().edge(e);
        os << "    <edge source=\"n" << edge.source.value() << "\" target=\"n"
           << edge.sink.value() << "\"/>\n";
    }
    os << "  </graph>\n</graphml>\n";
    return os.str();
}

std::string resource_graph_to_graphml(const ArchitectureModel& m) {
    const FailureRates rates;
    std::ostringstream os;
    open_document(os);
    declare_key(os, "d_name", "name", "string");
    declare_key(os, "d_kind", "kind", "string");
    declare_key(os, "d_asil", "asil", "string");
    declare_key(os, "d_lambda", "lambda", "double");
    os << "  <graph id=\"resources\" edgedefault=\"directed\">\n";
    for (ResourceId r : m.resources().node_ids()) {
        const Resource& res = m.resources().node(r);
        os << "    <node id=\"r" << r.value() << "\">\n"
           << "      <data key=\"d_name\">" << xml_escape(res.name) << "</data>\n"
           << "      <data key=\"d_kind\">" << to_string(res.kind) << "</data>\n"
           << "      <data key=\"d_asil\">" << to_string(res.asil) << "</data>\n"
           << "      <data key=\"d_lambda\">" << rates.resource_rate(res) << "</data>\n"
           << "    </node>\n";
    }
    for (LinkId e : m.resources().edge_ids()) {
        const auto& edge = m.resources().edge(e);
        os << "    <edge source=\"r" << edge.source.value() << "\" target=\"r"
           << edge.sink.value() << "\"/>\n";
    }
    os << "  </graph>\n</graphml>\n";
    return os.str();
}

}  // namespace asilkit::io

#include "bdd/from_fault_tree.h"

#include <cmath>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace asilkit::bdd {

using ftree::FaultTree;
using ftree::FtRef;
using ftree::GateKind;

std::vector<std::uint32_t> ft_variable_order(const FaultTree& ft) {
    std::vector<std::uint32_t> order;
    std::unordered_set<std::uint32_t> seen_events;
    std::unordered_set<std::uint32_t> seen_gates;
    std::deque<FtRef> queue{ft.top()};
    while (!queue.empty()) {
        const FtRef r = queue.front();
        queue.pop_front();
        if (r.kind == FtRef::Kind::Basic) {
            if (seen_events.insert(r.index).second) order.push_back(r.index);
            continue;
        }
        if (!seen_gates.insert(r.index).second) continue;
        for (FtRef c : ft.gate(r.index).children) queue.push_back(c);
    }
    return order;
}

CompiledFaultTree compile_fault_tree(const FaultTree& ft) {
    return compile_fault_tree(ft, ft_variable_order(ft));
}

CompiledFaultTree compile_fault_tree(const FaultTree& ft,
                                     const std::vector<std::uint32_t>& event_order) {
    CompiledFaultTree out{BddManager{static_cast<std::uint32_t>(event_order.size())}, kFalse,
                          event_order};
    std::unordered_map<std::uint32_t, std::uint32_t> var_of_event;
    for (std::uint32_t v = 0; v < event_order.size(); ++v) {
        var_of_event.emplace(event_order[v], v);
    }

    std::unordered_map<std::uint32_t, BddRef> gate_memo;
    std::function<BddRef(FtRef)> compile = [&](FtRef r) -> BddRef {
        if (r.kind == FtRef::Kind::Basic) {
            const auto it = var_of_event.find(r.index);
            if (it == var_of_event.end()) {
                throw AnalysisError("compile_fault_tree: event '" +
                                    ft.basic_event(r.index).name + "' missing from ordering");
            }
            return out.manager.variable(it->second);
        }
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        // A failure gate with no children has no failure mode: constant 0
        // for both gate kinds (fault-tree semantics, not boolean algebra).
        BddRef acc = kFalse;
        bool first = true;
        for (FtRef c : g.children) {
            const BddRef cb = compile(c);
            if (first) {
                acc = cb;
                first = false;
            } else {
                acc = out.manager.apply(g.kind == GateKind::Or ? BddOp::Or : BddOp::And, acc, cb);
            }
        }
        gate_memo.emplace(r.index, acc);
        return acc;
    };
    out.root = compile(ft.top());
    return out;
}

double basic_event_probability(double lambda, double hours) noexcept {
    return 1.0 - std::exp(-lambda * hours);
}

std::vector<double> CompiledFaultTree::variable_probabilities(const FaultTree& ft,
                                                              double hours) const {
    std::vector<double> probs;
    probs.reserve(event_of_var.size());
    for (std::uint32_t event : event_of_var) {
        probs.push_back(basic_event_probability(ft.basic_event(event).lambda, hours));
    }
    return probs;
}

}  // namespace asilkit::bdd

// Graph algorithms used by the model, transformations and fault-tree
// builder: cycle detection (application graphs are DCGs), topological
// order over the acyclic part, reachability, and simple-path counting
// (the quantity whose exponential growth motivates the Section V
// approximation).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/digraph.h"

namespace asilkit::graph {

/// DFS colouring used by the traversals below.
enum class DfsColor : std::uint8_t { White, Grey, Black };

/// True iff the graph contains a directed cycle.
template <typename G>
[[nodiscard]] bool has_cycle(const G& g) {
    std::vector<DfsColor> color(g.node_capacity(), DfsColor::White);
    // Iterative DFS with an explicit stack of (node, next-successor-index).
    for (auto root : g.node_ids()) {
        if (color[root.value()] != DfsColor::White) continue;
        std::vector<std::pair<typename G::node_id, std::size_t>> stack;
        stack.emplace_back(root, 0);
        color[root.value()] = DfsColor::Grey;
        while (!stack.empty()) {
            auto& [n, i] = stack.back();
            const auto& outs = g.out_edges(n);
            if (i < outs.size()) {
                auto next = g.edge(outs[i]).sink;
                ++i;
                if (color[next.value()] == DfsColor::Grey) return true;
                if (color[next.value()] == DfsColor::White) {
                    color[next.value()] = DfsColor::Grey;
                    stack.emplace_back(next, 0);
                }
            } else {
                color[n.value()] = DfsColor::Black;
                stack.pop_back();
            }
        }
    }
    return false;
}

/// Topological order of an acyclic graph; throws ModelError on cycles.
template <typename G>
[[nodiscard]] std::vector<typename G::node_id> topological_order(const G& g) {
    std::unordered_map<typename G::node_id, std::size_t> indegree;
    for (auto n : g.node_ids()) indegree[n] = g.in_degree(n);
    std::vector<typename G::node_id> ready;
    for (auto& [n, d] : indegree) {
        if (d == 0) ready.push_back(n);
    }
    // Deterministic order regardless of hash iteration.
    std::sort(ready.begin(), ready.end());
    std::vector<typename G::node_id> order;
    order.reserve(indegree.size());
    while (!ready.empty()) {
        auto n = ready.back();
        ready.pop_back();
        order.push_back(n);
        for (auto s : g.successors(n)) {
            if (--indegree[s] == 0) ready.push_back(s);
        }
    }
    if (order.size() != g.node_count()) {
        throw ModelError("topological_order: graph contains a cycle");
    }
    return order;
}

/// All nodes reachable from `start` following edge direction (inclusive).
template <typename G>
[[nodiscard]] std::unordered_set<typename G::node_id> reachable_from(
    const G& g, typename G::node_id start) {
    std::unordered_set<typename G::node_id> seen{start};
    std::vector<typename G::node_id> stack{start};
    while (!stack.empty()) {
        auto n = stack.back();
        stack.pop_back();
        for (auto s : g.successors(n)) {
            if (seen.insert(s).second) stack.push_back(s);
        }
    }
    return seen;
}

/// All nodes that reach `target` following edge direction (inclusive).
template <typename G>
[[nodiscard]] std::unordered_set<typename G::node_id> reaching(
    const G& g, typename G::node_id target) {
    std::unordered_set<typename G::node_id> seen{target};
    std::vector<typename G::node_id> stack{target};
    while (!stack.empty()) {
        auto n = stack.back();
        stack.pop_back();
        for (auto p : g.predecessors(n)) {
            if (seen.insert(p).second) stack.push_back(p);
        }
    }
    return seen;
}

/// Number of distinct simple source->sink paths in an *acyclic* graph,
/// saturating at 2^62 to avoid overflow on pathological inputs.  On cyclic
/// graphs back edges are ignored (the fault-tree builder cuts cycles the
/// same way).
template <typename G>
[[nodiscard]] std::uint64_t count_paths(const G& g, typename G::node_id source,
                                        typename G::node_id sink) {
    constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
    std::unordered_map<typename G::node_id, std::uint64_t> memo;
    std::unordered_set<typename G::node_id> on_stack;
    std::function<std::uint64_t(typename G::node_id)> visit =
        [&](typename G::node_id n) -> std::uint64_t {
        if (n == sink) return 1;
        if (auto it = memo.find(n); it != memo.end()) return it->second;
        if (!on_stack.insert(n).second) return 0;  // back edge: cut
        std::uint64_t total = 0;
        for (auto s : g.successors(n)) {
            const std::uint64_t sub = visit(s);
            total = (total > kCap - sub) ? kCap : total + sub;
        }
        on_stack.erase(n);
        memo[n] = total;
        return total;
    };
    return visit(source);
}

}  // namespace asilkit::graph

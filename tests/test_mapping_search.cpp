#include "explore/mapping_search.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/ccf.h"
#include "core/error.h"
#include "io/model_json.h"
#include "model/validation.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::explore {
namespace {

TEST(MappingSearch, ImprovesSeriesChain) {
    ArchitectureModel m = scenarios::chain_n_stages(4);
    const MappingSearchResult r = search_mapping(m);
    EXPECT_GT(r.merges, 0u);
    EXPECT_LT(r.probability_after, r.probability_before);
    EXPECT_LT(r.cost_after, r.cost_before);
    EXPECT_TRUE(r.reached_local_optimum);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(MappingSearch, NeverExceedsCapacity) {
    ArchitectureModel m = scenarios::chain_n_stages(6);
    MappingSearchOptions options;
    options.max_nodes_per_resource = 2;
    search_mapping(m, options);
    for (ResourceId r : m.resources().node_ids()) {
        EXPECT_LE(m.nodes_on_resource(r).size(), 2u)
            << m.resources().node(r).name;
    }
}

TEST(MappingSearch, LooserCapacityFindsBetterOptimum) {
    ArchitectureModel tight_model = scenarios::chain_n_stages(6);
    MappingSearchOptions tight;
    tight.max_nodes_per_resource = 2;
    const auto r_tight = search_mapping(tight_model, tight);

    ArchitectureModel loose_model = scenarios::chain_n_stages(6);
    MappingSearchOptions loose;
    loose.max_nodes_per_resource = 8;
    const auto r_loose = search_mapping(loose_model, loose);

    EXPECT_LE(r_loose.probability_after, r_tight.probability_after);
    EXPECT_LT(r_loose.probability_after, r_loose.probability_before);
}

TEST(MappingSearch, NeverMergesAcrossBranches) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    search_mapping(m);
    EXPECT_TRUE(analysis::analyze_ccf(m).independent());
    // Replicas stay on distinct hardware.
    const auto r1 = m.mapped_resources(m.find_app_node("n_1"));
    const auto r2 = m.mapped_resources(m.find_app_node("n_2"));
    ASSERT_EQ(r1.size(), 1u);
    ASSERT_EQ(r2.size(), 1u);
    EXPECT_NE(r1.front(), r2.front());
}

TEST(MappingSearch, SensorsActuatorsManagementUntouched) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    search_mapping(m);
    EXPECT_TRUE(m.find_resource("sens_hw").valid());
    EXPECT_TRUE(m.find_resource("act_hw").valid());
    EXPECT_TRUE(m.find_resource("split_n_hw").valid());
    EXPECT_TRUE(m.find_resource("merge_n_hw").valid());
}

TEST(MappingSearch, SharedResourceGetsRequiredReadiness) {
    // Merging a D-node's resource with a B-node's resource must raise the
    // shared hardware to D so Eq. 3 does not degrade.
    ArchitectureModel m("mixed");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s = m.add_node_with_dedicated_resource(
        {"sens", NodeKind::Sensor, AsilTag{Asil::D}, {}}, loc);
    const NodeId f1 = m.add_node_with_dedicated_resource(
        {"f1", NodeKind::Functional, AsilTag{Asil::B}, {}}, loc);
    const NodeId f2 = m.add_node_with_dedicated_resource(
        {"f2", NodeKind::Functional, AsilTag{Asil::D}, {}}, loc);
    const NodeId a = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s, f1);
    m.connect_app(f1, f2);
    m.connect_app(f2, a);
    const Asil f1_before = m.effective_asil(f1);
    const Asil f2_before = m.effective_asil(f2);
    search_mapping(m);
    EXPECT_EQ(m.effective_asil(f1), f1_before);
    EXPECT_EQ(m.effective_asil(f2), f2_before);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(MappingSearch, IterationLimitRespected) {
    ArchitectureModel m = scenarios::chain_n_stages(6);
    MappingSearchOptions options;
    options.max_iterations = 1;
    const auto r = search_mapping(m, options);
    EXPECT_LE(r.merges, 1u);
    EXPECT_LE(r.iterations, 1u);
}

TEST(MappingSearch, NoopWhenNothingMergeable) {
    ArchitectureModel m = scenarios::chain_1in_1out();  // 1 functional, 2 comm
    MappingSearchOptions options;
    options.include_non_branch_nodes = false;
    const auto r = search_mapping(m, options);
    EXPECT_EQ(r.merges, 0u);
    EXPECT_TRUE(r.reached_local_optimum);
    EXPECT_DOUBLE_EQ(r.probability_after, r.probability_before);
}

TEST(MappingSearch, LintPrefilterNeverChangesResults) {
    // The pre-filter may only reject candidates that could not have won;
    // the searched model and every objective must be bitwise identical
    // with the filter on or off, at any thread count.
    for (const unsigned threads : {1u, 4u}) {
        ArchitectureModel with = scenarios::chain_n_stages(6);
        ArchitectureModel without = scenarios::chain_n_stages(6);
        transform::expand(with, with.find_app_node("f3"));
        transform::expand(without, without.find_app_node("f3"));

        MappingSearchOptions options;
        options.engine.threads = threads;
        options.lint_prefilter = true;
        const MappingSearchResult r_with = search_mapping(with, options);
        options.lint_prefilter = false;
        const MappingSearchResult r_without = search_mapping(without, options);

        EXPECT_EQ(r_with.merges, r_without.merges) << threads;
        EXPECT_EQ(r_with.iterations, r_without.iterations) << threads;
        EXPECT_EQ(r_with.probability_after, r_without.probability_after) << threads;
        EXPECT_EQ(r_with.cost_after, r_without.cost_after) << threads;
        EXPECT_EQ(io::to_json(with).dump(), io::to_json(without).dump()) << threads;
        EXPECT_EQ(r_without.lint_rejections, 0u);
    }
}

TEST(MappingSearch, LintRejectionCounterReported) {
    // The in-region move generator never proposes structurally invalid
    // merges, so a healthy search reports zero rejections — the counter
    // exists for external callers that inject broken candidates.
    ArchitectureModel m = scenarios::chain_n_stages(4);
    const MappingSearchResult r = search_mapping(m, {});
    EXPECT_EQ(r.lint_rejections, 0u);
}

// ---- exactness contract ----------------------------------------------------

namespace {

void expect_same_front(const std::vector<TradeoffPoint>& a, const std::vector<TradeoffPoint>& b,
                       unsigned threads) {
    ASSERT_EQ(a.size(), b.size()) << threads;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label) << threads << " point " << i;
        EXPECT_EQ(a[i].cost, b[i].cost) << threads << " point " << i;  // bitwise
        EXPECT_EQ(a[i].failure_probability, b[i].failure_probability)
            << threads << " point " << i;
    }
}

}  // namespace

TEST(MappingSearch, BoundPruningNeverChangesResults) {
    // The bound check may only skip candidates whose admissible lower
    // bound proves them unable to beat the best evaluated move; the
    // searched model, every objective AND the emitted front must be
    // bitwise identical with pruning on or off, at any thread count.
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        ArchitectureModel pruned = scenarios::chain_n_stages(6);
        ArchitectureModel exhaustive = scenarios::chain_n_stages(6);
        transform::expand(pruned, pruned.find_app_node("f3"));
        transform::expand(exhaustive, exhaustive.find_app_node("f3"));

        MappingSearchOptions options;
        options.engine.threads = threads;
        options.bound_pruning = true;
        const MappingSearchResult r_on = search_mapping(pruned, options);
        options.bound_pruning = false;
        const MappingSearchResult r_off = search_mapping(exhaustive, options);

        EXPECT_EQ(r_on.merges, r_off.merges) << threads;
        EXPECT_EQ(r_on.iterations, r_off.iterations) << threads;
        EXPECT_EQ(r_on.probability_before, r_off.probability_before) << threads;
        EXPECT_EQ(r_on.probability_after, r_off.probability_after) << threads;
        EXPECT_EQ(r_on.cost_after, r_off.cost_after) << threads;
        EXPECT_EQ(io::to_json(pruned).dump(), io::to_json(exhaustive).dump()) << threads;
        expect_same_front(r_on.front, r_off.front, threads);
        EXPECT_EQ(r_off.bound_rejections, 0u);
        // Pruning must actually do something on this walk, or the bench
        // claims are vacuous.
        EXPECT_GT(r_on.bound_rejections, 0u) << threads;
        EXPECT_LT(r_on.evaluations, r_off.evaluations) << threads;
    }
}

TEST(MappingSearch, CandidateDedupNeverChangesResults) {
    // The engine memo replays the bitwise EvalValue an earlier
    // evaluation produced, so toggling it (with an evicting cache, where
    // it can actually serve) never changes the search.
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        ArchitectureModel with = scenarios::chain_n_stages(6);
        ArchitectureModel without = scenarios::chain_n_stages(6);
        transform::expand(with, with.find_app_node("f3"));
        transform::expand(without, without.find_app_node("f3"));

        MappingSearchOptions options;
        options.engine = {.threads = threads, .cache_capacity = 2};  // constant eviction
        options.engine.candidate_dedup = true;
        const MappingSearchResult r_with = search_mapping(with, options);
        options.engine.candidate_dedup = false;
        const MappingSearchResult r_without = search_mapping(without, options);

        EXPECT_EQ(r_with.merges, r_without.merges) << threads;
        EXPECT_EQ(r_with.iterations, r_without.iterations) << threads;
        EXPECT_EQ(r_with.probability_after, r_without.probability_after) << threads;
        EXPECT_EQ(r_with.cost_after, r_without.cost_after) << threads;
        EXPECT_EQ(io::to_json(with).dump(), io::to_json(without).dump()) << threads;
        expect_same_front(r_with.front, r_without.front, threads);
        EXPECT_EQ(r_without.dedup_hits, 0u);
    }
}

TEST(MappingSearch, PruningAndDedupTogetherStayExact) {
    // Both features at once vs neither: the full staged pipeline against
    // the plain exhaustive search.
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        ArchitectureModel staged = scenarios::chain_n_stages(6);
        ArchitectureModel plain = scenarios::chain_n_stages(6);
        transform::expand(staged, staged.find_app_node("f3"));
        transform::expand(plain, plain.find_app_node("f3"));

        MappingSearchOptions options;
        options.engine.threads = threads;
        options.bound_pruning = true;
        options.engine.candidate_dedup = true;
        const MappingSearchResult r_staged = search_mapping(staged, options);
        options.bound_pruning = false;
        options.engine.candidate_dedup = false;
        options.lint_prefilter = false;
        const MappingSearchResult r_plain = search_mapping(plain, options);

        EXPECT_EQ(r_staged.merges, r_plain.merges) << threads;
        EXPECT_EQ(r_staged.probability_after, r_plain.probability_after) << threads;
        EXPECT_EQ(r_staged.cost_after, r_plain.cost_after) << threads;
        EXPECT_EQ(io::to_json(staged).dump(), io::to_json(plain).dump()) << threads;
        expect_same_front(r_staged.front, r_plain.front, threads);
    }
}

TEST(MappingSearch, IncrementalFtreeNeverChangesResults) {
    // Incremental component-fragment tree generation assembles bitwise
    // identical trees (docs/ftree.md), so the searched model, every
    // objective and the front must match the full-rebuild path exactly,
    // at any thread count.
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        ArchitectureModel incremental = scenarios::chain_n_stages(6);
        ArchitectureModel full = scenarios::chain_n_stages(6);
        transform::expand(incremental, incremental.find_app_node("f3"));
        transform::expand(full, full.find_app_node("f3"));

        MappingSearchOptions options;
        options.engine.threads = threads;
        options.engine.incremental_ftree = true;
        const MappingSearchResult r_on = search_mapping(incremental, options);
        options.engine.incremental_ftree = false;
        const MappingSearchResult r_off = search_mapping(full, options);

        EXPECT_EQ(r_on.merges, r_off.merges) << threads;
        EXPECT_EQ(r_on.iterations, r_off.iterations) << threads;
        EXPECT_EQ(r_on.probability_before, r_off.probability_before) << threads;
        EXPECT_EQ(r_on.probability_after, r_off.probability_after) << threads;
        EXPECT_EQ(r_on.cost_before, r_off.cost_before) << threads;
        EXPECT_EQ(r_on.cost_after, r_off.cost_after) << threads;
        EXPECT_EQ(io::to_json(incremental).dump(), io::to_json(full).dump()) << threads;
        expect_same_front(r_on.front, r_off.front, threads);
        // The fragment caches must actually carry load on this walk
        // (exact counts are scheduling-dependent at threads > 1, so only
        // the on/off split is asserted).
        EXPECT_GT(r_on.fragments_reused, 0u) << threads;
        EXPECT_GT(r_on.fragments_built, 0u) << threads;
        EXPECT_EQ(r_off.fragments_built, 0u);
        EXPECT_EQ(r_off.fragments_reused, 0u);
        EXPECT_EQ(r_off.ftree_memo_hits, 0u);
    }
}

// ---- anytime front ---------------------------------------------------------

TEST(MappingSearch, StreamsFrontInWalkOrder) {
    ArchitectureModel m = scenarios::chain_n_stages(6);
    MappingSearchOptions options;
    std::vector<TradeoffPoint> streamed;
    std::vector<std::size_t> sizes;
    options.on_front_update = [&](const TradeoffPoint& p, std::size_t front_size) {
        streamed.push_back(p);
        sizes.push_back(front_size);
    };
    const MappingSearchResult r = search_mapping(m, options);

    // The initial state always opens the front; every accepted merge of
    // a steepest-descent walk strictly improves the objective, so each
    // one updates the front too.
    ASSERT_GE(streamed.size(), 1u);
    EXPECT_EQ(streamed.front().label, "initial");
    EXPECT_EQ(streamed.size(), r.front_updates);
    EXPECT_EQ(streamed.size(), r.merges + 1);
    EXPECT_EQ(r.front.size(), sizes.back());
    // The last streamed point is the local optimum the search returns.
    EXPECT_EQ(streamed.back().failure_probability, r.probability_after);
    EXPECT_EQ(streamed.back().cost, r.cost_after);
}

TEST(MappingSearch, CallerOwnedTrackerAccumulatesAcrossSearches) {
    ParetoTracker tracker;
    MappingSearchOptions options;
    options.front_tracker = &tracker;

    ArchitectureModel tight_model = scenarios::chain_n_stages(6);
    options.max_nodes_per_resource = 2;
    const MappingSearchResult r_tight = search_mapping(tight_model, options);

    ArchitectureModel loose_model = scenarios::chain_n_stages(6);
    options.max_nodes_per_resource = 8;
    const MappingSearchResult r_loose = search_mapping(loose_model, options);

    // The second result's front is the shared tracker's: it has seen both
    // walks, so it dominates (or equals) each run's own best state.
    EXPECT_EQ(r_loose.front.size(), tracker.front().size());
    EXPECT_GE(r_tight.front.size(), 1u);
    for (std::size_t i = 1; i < r_loose.front.size(); ++i) {
        EXPECT_GT(r_loose.front[i].cost, r_loose.front[i - 1].cost);
        EXPECT_LT(r_loose.front[i].failure_probability,
                  r_loose.front[i - 1].failure_probability);
    }
}

// ---- region-id packing -----------------------------------------------------

TEST(MappingSearch, PackRegionIdIsCollisionFree) {
    // Regression: the old (merger << 16) | branch packing aliased e.g.
    // (merger 2, branch 0) with (merger 1, branch 0x10000).
    EXPECT_NE(detail::pack_region_id(2, 0), detail::pack_region_id(1, 0x10000));
    EXPECT_EQ(detail::pack_region_id(3, 5), (std::uint64_t{3} << 32) | 5u);
    // Distinct pairs across the full 32-bit branch range stay distinct.
    EXPECT_NE(detail::pack_region_id(0, 1), detail::pack_region_id(1, 0));
    // The trunk sentinel (~0) is unreachable: the all-ones merger id is
    // the invalid NodeId and is rejected.
    EXPECT_THROW((void)detail::pack_region_id(0xFFFFFFFFu, 0xFFFFFFFFu), ModelError);
    EXPECT_THROW((void)detail::pack_region_id(std::uint64_t{1} << 32, 0), ModelError);
    EXPECT_THROW((void)detail::pack_region_id(0, std::uint64_t{1} << 32), ModelError);
}

}  // namespace
}  // namespace asilkit::explore

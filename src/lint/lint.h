// Cross-layer safety linter over ArchitectureModel (clang-tidy style).
//
// Where model/validation.h answers "is this model structurally usable?",
// the linter answers "is this candidate architecture *sound*?" — with
// stable rule ids, per-rule severities a config file can override,
// structured locations (which element of which layer), and fix-it hints
// phrased as the transform:: / mapping operation that repairs the
// finding.  The ten validator checks are ported as rules; on top, the
// linter covers the cross-layer reasoning the validator cannot express:
// decomposed branches sharing resources / locations / environmental
// zones, catalogue-invalid decomposition patterns, ASIL propagation
// inconsistencies along application paths, dead splitter/merger pairs,
// and effective-ASIL (Eq. 3) regressions introduced by a mapping.
//
// The linter never builds a fault tree or a BDD: every rule is linear-ish
// in the model size, which is what makes run_lint() usable as a
// pre-filter in front of the expensive evaluation pipeline (see
// explore::search_mapping).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/ccf.h"
#include "model/architecture.h"
#include "model/blocks.h"

namespace asilkit::lint {

// ---- severities -----------------------------------------------------------

/// Off disables a rule entirely; Note findings are informational and do
/// not affect the clean/dirty verdict; Warning/Error mirror the
/// validator's severity split.
enum class Severity : std::uint8_t { Off, Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s) noexcept;
/// Parses "off" / "note" / "warning" / "error" (case-sensitive).
/// Throws IoError on anything else.
[[nodiscard]] Severity severity_from_string(std::string_view text);

// ---- locations ------------------------------------------------------------

/// Which of the three model layers (or the mapping between them) a
/// diagnostic is anchored to.
enum class Layer : std::uint8_t { Application, Resource, Physical, Mapping };

[[nodiscard]] std::string_view to_string(Layer l) noexcept;

/// A model location: layer + raw element id + element name.  `id` is the
/// StrongId value of the node/resource/location (kInvalid when the
/// finding has no single anchor element).
struct ModelLocation {
    Layer layer = Layer::Application;
    std::uint32_t id = std::uint32_t(-1);
    std::string name;

    [[nodiscard]] static ModelLocation app_node(const ArchitectureModel& m, NodeId n);
    [[nodiscard]] static ModelLocation resource(const ArchitectureModel& m, ResourceId r);
    [[nodiscard]] static ModelLocation location(const ArchitectureModel& m, LocationId p);

    /// "app:steer_cmd", "resource:ecu1", ... — the SARIF
    /// fullyQualifiedName and the text-format anchor.
    [[nodiscard]] std::string qualified_name() const;
};

// ---- diagnostics ----------------------------------------------------------

/// What a rule reports: the message and anchor, plus an optional fix-it
/// hint phrased as the operation that repairs the finding
/// (e.g. "transform::Expand('n7') with pattern C -> B(C)+A(C)").
struct Finding {
    std::string message;
    ModelLocation location;
    std::string fixit;
};

/// A finding stamped with its rule id and effective severity.
struct Diagnostic {
    std::string rule_id;
    Severity severity = Severity::Warning;
    std::string message;
    ModelLocation location;
    std::string fixit;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

struct LintReport {
    std::vector<Diagnostic> diagnostics;

    [[nodiscard]] std::size_t count(Severity s) const noexcept;
    [[nodiscard]] std::size_t error_count() const noexcept { return count(Severity::Error); }
    [[nodiscard]] std::size_t warning_count() const noexcept { return count(Severity::Warning); }
    [[nodiscard]] std::size_t note_count() const noexcept { return count(Severity::Note); }
    /// Clean = no warnings and no errors (notes are allowed).
    [[nodiscard]] bool clean() const noexcept { return error_count() + warning_count() == 0; }
    [[nodiscard]] bool has(std::string_view rule_id) const noexcept;
};

// ---- rules ----------------------------------------------------------------

/// Static metadata of a rule; `layers` names the layer(s) the rule
/// reasons about ("app", "mapping", "app+resource+physical", ...) for
/// the docs/lint.md catalogue table.
struct RuleInfo {
    std::string_view id;
    Severity default_severity = Severity::Warning;
    std::string_view layers;
    std::string_view summary;
};

/// Shared per-run artifacts so rules do not recompute block detection or
/// the CCF analysis.
class LintContext {
public:
    explicit LintContext(const ArchitectureModel& m);

    [[nodiscard]] const ArchitectureModel& model() const noexcept { return model_; }
    [[nodiscard]] const std::vector<RedundantBlock>& blocks() const noexcept { return blocks_; }
    [[nodiscard]] const analysis::CcfReport& ccf() const noexcept { return ccf_; }

private:
    const ArchitectureModel& model_;
    std::vector<RedundantBlock> blocks_;
    analysis::CcfReport ccf_;
};

class Rule {
public:
    virtual ~Rule() = default;
    [[nodiscard]] virtual const RuleInfo& info() const noexcept = 0;
    virtual void run(const LintContext& ctx, std::vector<Finding>& out) const = 0;
};

/// An ordered, id-unique collection of rules.
class RuleRegistry {
public:
    /// Throws ModelError on a duplicate rule id.
    void add(std::unique_ptr<Rule> rule);
    [[nodiscard]] const Rule* find(std::string_view id) const noexcept;
    [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const noexcept {
        return rules_;
    }

    /// The built-in catalogue (see docs/lint.md), in stable order.
    [[nodiscard]] static const RuleRegistry& builtin();

private:
    std::vector<std::unique_ptr<Rule>> rules_;
};

// ---- configuration --------------------------------------------------------

/// Per-rule severity overrides, loadable from a JSON config file:
///
///   { "rules": { "ccf.shared-location-branch": "error",
///                "transform.reducible-pair":   "off" } }
///
/// Unknown rule ids are rejected (IoError): a typo silently disabling a
/// safety rule is itself a safety hazard.
struct LintConfig {
    std::map<std::string, Severity, std::less<>> overrides;

    [[nodiscard]] Severity effective(const RuleInfo& info) const noexcept;
};

/// Parses a config document against the built-in registry.
[[nodiscard]] LintConfig lint_config_from_json_text(std::string_view text);
/// Reads and parses a config file.
[[nodiscard]] LintConfig load_lint_config(const std::string& path);

// ---- running --------------------------------------------------------------

struct LintOptions {
    LintConfig config{};
    /// Run only rules whose effective severity is Error — the pre-filter
    /// mode used by explore::search_mapping.
    bool errors_only = false;
};

/// Runs every registry rule (built-in registry by default) and stamps
/// findings with their effective severities.  Diagnostic order is
/// deterministic: registry order, then each rule's own emission order.
[[nodiscard]] LintReport run_lint(const ArchitectureModel& m, const LintOptions& options = {});
[[nodiscard]] LintReport run_lint(const ArchitectureModel& m, const RuleRegistry& registry,
                                  const LintOptions& options);

/// Number of error-severity findings under the default configuration —
/// the cheap structural soundness count the mapping-search pre-filter
/// compares against its baseline.
[[nodiscard]] std::size_t structural_error_count(const ArchitectureModel& m);

}  // namespace asilkit::lint

#include "analysis/probability.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::analysis {
namespace {

TEST(Probability, ChainIsSumOfSeriesRates) {
    // 5 ASIL-D resources at 1e-9 plus 2 locations at 1e-11: the exact
    // probability at 1 hour is within rounding of the rate sum.
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const ProbabilityResult r = analyze_failure_probability(m);
    EXPECT_NEAR(r.failure_probability, 5.02e-9, 1e-12);
    EXPECT_EQ(r.variables, 7u);
    EXPECT_TRUE(r.warnings.empty());
}

TEST(Probability, MissionTimeScales) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    ProbabilityOptions long_mission;
    long_mission.mission_hours = 10000.0;
    const double p1 = analyze_failure_probability(m).failure_probability;
    const double p2 = analyze_failure_probability(m, long_mission).failure_probability;
    EXPECT_NEAR(p2 / p1, 10000.0, 1.0);
}

TEST(Probability, LocationEventsToggle) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    ProbabilityOptions no_locations;
    no_locations.include_location_events = false;
    const double with = analyze_failure_probability(m).failure_probability;
    const double without = analyze_failure_probability(m, no_locations).failure_probability;
    EXPECT_NEAR(with - without, 2e-11, 1e-14);
}

TEST(Probability, CustomRates) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    ProbabilityOptions options;
    options.rates.set_rate(ResourceKind::Functional, Asil::D, 1e-6);  // one bad ECU family
    const double p = analyze_failure_probability(m, options).failure_probability;
    EXPECT_NEAR(p, 1e-6 + 4e-9 + 2e-11, 1e-10);
}

TEST(Probability, ExpansionOf1In1OutLowersProbability) {
    // Paper Figs. 5/7: replicating a series node behind reliable
    // splitter/merger hardware reduces the failure probability.
    ArchitectureModel m = scenarios::chain_1in_1out();
    const double before = analyze_failure_probability(m).failure_probability;
    transform::expand(m, m.find_app_node("n"));
    const double after = analyze_failure_probability(m).failure_probability;
    EXPECT_LT(after, before);
    // The removed D node contributed 1e-9; the new splitter+merger add
    // 2e-10; the branches contribute ~(1e-7)^2.
    EXPECT_NEAR(before - after, 8e-10, 1e-10);
}

TEST(Probability, ExpansionOf3In3OutIsLessBeneficialThan1In1Out) {
    // Paper Fig. 8 vs Fig. 7: a high-fan node needs one splitter/merger
    // per edge, so its expansion benefit shrinks (and can invert).
    ArchitectureModel small = scenarios::chain_1in_1out();
    const double small_before = analyze_failure_probability(small).failure_probability;
    transform::expand(small, small.find_app_node("n"));
    const double small_delta =
        analyze_failure_probability(small).failure_probability - small_before;

    ArchitectureModel wide = scenarios::chain_3in_3out();
    const double wide_before = analyze_failure_probability(wide).failure_probability;
    transform::expand(wide, wide.find_app_node("n"));
    const double wide_delta =
        analyze_failure_probability(wide).failure_probability - wide_before;

    EXPECT_GT(wide_delta, small_delta);
}

TEST(Probability, ExpansionOf3In3OutRaisesProbabilityWithCheaperManagement) {
    // Paper Fig. 8 / Section VII-B conclusion: "it is not always
    // beneficial to introduce redundancy in the system, depending on the
    // lambda values of the resources that are being used and the system
    // configuration".  With splitter/merger hardware only 2.5x (not 10x)
    // more reliable than functional hardware, the 6 new management
    // resources of a 3-in/3-out expansion outweigh the removed node while
    // the 1-in/1-out expansion stays beneficial.
    ProbabilityOptions options;
    options.rates.set_rate(ResourceKind::Splitter, Asil::D, 4e-10);
    options.rates.set_rate(ResourceKind::Merger, Asil::D, 4e-10);

    ArchitectureModel wide = scenarios::chain_3in_3out();
    const double wide_before = analyze_failure_probability(wide, options).failure_probability;
    transform::expand(wide, wide.find_app_node("n"));
    const double wide_after = analyze_failure_probability(wide, options).failure_probability;
    EXPECT_GT(wide_after, wide_before);

    ArchitectureModel small = scenarios::chain_1in_1out();
    const double small_before = analyze_failure_probability(small, options).failure_probability;
    transform::expand(small, small.find_app_node("n"));
    const double small_after = analyze_failure_probability(small, options).failure_probability;
    EXPECT_LT(small_after, small_before);
}

TEST(Probability, ApproximationIsAccurateOnFig3) {
    // Paper Section V: 2.04180e-7 exact vs 2.04179e-7 approximated.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    ProbabilityOptions approx;
    approx.approximate = true;
    const ProbabilityResult exact = analyze_failure_probability(m);
    const ProbabilityResult approximated = analyze_failure_probability(m, approx);
    EXPECT_EQ(approximated.approximated_blocks, 1u);
    EXPECT_LT(approximated.ft_stats.dag_nodes, exact.ft_stats.dag_nodes);
    const double rel_error = std::abs(exact.failure_probability -
                                      approximated.failure_probability) /
                             exact.failure_probability;
    EXPECT_LT(rel_error, 1e-4);
    // The approximation drops branch events, so it slightly UNDERestimates.
    EXPECT_LE(approximated.failure_probability, exact.failure_probability);
}

TEST(Probability, Fig3MagnitudeMatchesPaper) {
    // Paper: 2.04180e-7 fph; our reconstruction of the unpublished model
    // must land in the same ballpark (dominated by the two B sensors).
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const double p = analyze_failure_probability(m).failure_probability;
    EXPECT_GT(p, 1.9e-7);
    EXPECT_LT(p, 2.3e-7);
}

TEST(Probability, ApproximationAccurateOnExpandedChains) {
    for (std::size_t stages : {1u, 2u, 3u, 4u}) {
        ArchitectureModel m = scenarios::chain_n_stages(stages);
        for (std::size_t i = 1; i <= stages; ++i) {
            transform::expand(m, m.find_app_node("f" + std::to_string(i)));
        }
        ProbabilityOptions approx;
        approx.approximate = true;
        const double exact = analyze_failure_probability(m).failure_probability;
        const double approximated =
            analyze_failure_probability(m, approx).failure_probability;
        EXPECT_LE(approximated, exact);
        EXPECT_LT((exact - approximated) / exact, 1e-3) << stages << " stages";
    }
}

TEST(Probability, FaultTreeProbabilityOnHandTree) {
    ftree::FaultTree ft;
    const auto a = ft.add_basic_event("a", 0.1);
    const auto b = ft.add_basic_event("b", 0.1);
    ft.set_top(ft.add_gate("top", ftree::GateKind::And, {a, b}));
    const double p_event = 1.0 - std::exp(-0.1);
    EXPECT_NEAR(fault_tree_probability(ft), p_event * p_event, 1e-12);
}

TEST(Probability, RareEventMatchesBddOnSeriesSystems) {
    // Without shared events or AND gates, sum == exact (to first order).
    // Location events are shared between co-located gates, so exclude
    // them to get a genuinely share-free tree.
    const ArchitectureModel m = scenarios::chain_1in_1out();
    ftree::FtBuildOptions options;
    options.include_location_events = false;
    const ftree::FtBuildResult ft = ftree::build_fault_tree(m, options);
    const double bdd = fault_tree_probability(ft.tree);
    const double rare = rare_event_probability(ft.tree);
    EXPECT_NEAR(bdd, rare, 1e-12);
}

TEST(Probability, RareEventArithmeticIsWrongWithSharedEvents) {
    // Gate-local sum/product arithmetic mishandles shared events: in
    // Fig. 3 the camera/GPS failures reach the top only through the
    // merger's AND, whose product treats the two branches as independent
    // and so *loses* the common upstream contribution almost entirely
    // (underestimating by two orders of magnitude here).  This is exactly
    // why the paper converts the fault tree to a BDD before evaluating.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const ftree::FtBuildResult ft = ftree::build_fault_tree(m);
    const double exact = fault_tree_probability(ft.tree);
    const double rare = rare_event_probability(ft.tree);
    EXPECT_LT(rare, 0.1 * exact);
}

TEST(Probability, BddIsBruteForceExactOnRandomTrees) {
    for (std::uint32_t seed = 100; seed < 110; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 8, 5);
        EXPECT_NEAR(fault_tree_probability(ft), testing::brute_force_probability(ft), 1e-10)
            << "seed " << seed;
    }
}

TEST(Probability, ModularMatchesMonolithicOnRandomTrees) {
    // modular_probability computes the same exact quantity through a
    // different BDD factorisation; on random trees (which contain shared
    // events, so single-module regions too) the two must agree to
    // rounding, and both must match brute force.
    for (std::uint32_t seed = 100; seed < 110; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 8, 5);
        const double mono = fault_tree_probability(ft);
        const double modular = modular_probability(ft);
        EXPECT_NEAR(modular, mono, 1e-12 * std::max(mono, 1e-30)) << "seed " << seed;
        EXPECT_NEAR(modular, testing::brute_force_probability(ft), 1e-10) << "seed " << seed;
    }
}

TEST(Probability, ModularMatchesMonolithicOnSharedEventTree) {
    // Fig. 3 has genuinely shared events (camera/GPS reach the top
    // through both merger branches) — those stay inside one module and
    // the decomposition must still be exact.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const ftree::FtBuildResult ft = ftree::build_fault_tree(m);
    const double exact = fault_tree_probability(ft.tree);
    EXPECT_NEAR(modular_probability(ft.tree), exact, 1e-12 * exact);
}

TEST(Probability, ModularHandlesDegenerateTops) {
    ftree::FaultTree leaf;
    leaf.set_top(leaf.add_basic_event("only", 0.5));
    EXPECT_NEAR(modular_probability(leaf), 1.0 - std::exp(-0.5), 1e-15);

    ftree::FaultTree unary;
    unary.set_top(unary.add_gate("g", ftree::GateKind::Or, {unary.add_basic_event("e", 0.5)}));
    EXPECT_NEAR(modular_probability(unary), 1.0 - std::exp(-0.5), 1e-15);
}

TEST(Probability, ResultCarriesStructuralDiagnostics) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const ProbabilityResult r = analyze_failure_probability(m);
    EXPECT_GT(r.ft_stats.dag_nodes, 0u);
    EXPECT_GT(r.bdd_nodes, 0u);
    EXPECT_GE(r.bdd_total_nodes, r.bdd_nodes);
    EXPECT_GT(r.variables, 0u);
    EXPECT_EQ(r.cycles_cut, 0u);
}

}  // namespace
}  // namespace asilkit::analysis

// Sensitivity analysis: how the system failure probability responds to
// failure-rate assumptions and mission time.
//
// The paper's Fig. 8 discussion shows that the value of a transformation
// depends on the lambda values assigned to resource classes; this module
// systematises that: sweep one (kind, ASIL) rate across a factor range,
// or the mission time across a horizon, and report the resulting
// failure-probability curve.  Used by the fig8 bench's sensitivity table
// and available to architects through the library API.
#pragma once

#include <string>
#include <vector>

#include "analysis/probability.h"
#include "model/architecture.h"

namespace asilkit::analysis {

struct SensitivityPoint {
    double parameter = 0.0;  ///< the swept value (rate multiplier or hours)
    double failure_probability = 0.0;
};

struct RateSweepOptions {
    ResourceKind kind = ResourceKind::Functional;
    Asil asil = Asil::D;
    /// Multipliers applied to the Table I base rate of (kind, asil).
    std::vector<double> multipliers{0.1, 0.5, 1.0, 2.0, 10.0};
    ProbabilityOptions probability{};
};

/// Failure probability as a function of one resource-class rate.
[[nodiscard]] std::vector<SensitivityPoint> sweep_failure_rate(const ArchitectureModel& m,
                                                               const RateSweepOptions& options);

struct MissionSweepOptions {
    /// Mission durations in hours (e.g. 1 h trip .. 10 kh vehicle life).
    std::vector<double> hours{1.0, 10.0, 100.0, 1000.0, 10000.0};
    ProbabilityOptions probability{};
};

/// Failure probability as a function of mission time.
[[nodiscard]] std::vector<SensitivityPoint> sweep_mission_time(const ArchitectureModel& m,
                                                               const MissionSweepOptions& options);

/// Tornado entry: the probability swing produced by scaling one resource
/// class's rate down/up by `factor`.
struct TornadoEntry {
    ResourceKind kind = ResourceKind::Functional;
    Asil asil = Asil::QM;
    double low = 0.0;   ///< P with rate / factor
    double high = 0.0;  ///< P with rate * factor
    [[nodiscard]] double swing() const noexcept { return high - low; }
};

/// One entry per (kind, ASIL) class actually present in the model,
/// sorted by descending swing — which rate assumption matters most.
[[nodiscard]] std::vector<TornadoEntry> tornado(const ArchitectureModel& m, double factor = 10.0,
                                                const ProbabilityOptions& base = {});

}  // namespace asilkit::analysis

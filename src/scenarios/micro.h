// Micro-scenarios for the Section VII-B experiments (paper Figs. 5-9).
//
// Each builder returns the *initial* (non-redundant) model; the benches
// and tests apply the transformation under study and compare failure
// probabilities before/after, mirroring the paper's examples:
//   Fig. 5/7: expanding a 1-input node lowers the failure probability;
//   Fig. 8:   expanding a 3-input/3-output node raises it;
//   Fig. 6:   connecting two consecutive blocks lowers it;
//   Fig. 9:   sharing resources inside branches lowers it further.
#pragma once

#include <string>

#include "model/architecture.h"

namespace asilkit::scenarios {

/// sensor -> c_in -> n -> c_out -> actuator, every node ASIL D on
/// dedicated hardware (Fig. 5's starting point).
[[nodiscard]] ArchitectureModel chain_1in_1out();

/// One functional node with 1 input and 2 outputs feeding two actuators
/// (Fig. 7's starting point).
[[nodiscard]] ArchitectureModel chain_1in_2out();

/// One functional node with 3 inputs and 3 outputs (Fig. 8).
[[nodiscard]] ArchitectureModel chain_3in_3out();

/// sensor -> c0 -> n1 -> c_mid -> n2 -> c5 -> actuator: expanding both n1
/// and n2 yields the two consecutive blocks of Fig. 6.
[[nodiscard]] ArchitectureModel chain_two_stages();

/// A plain chain of `stages` functional nodes separated by communication
/// nodes (scalability studies; each stage is independently expandable).
/// Stage functional nodes are named "f1" ... "f<stages>".
[[nodiscard]] ArchitectureModel chain_n_stages(std::size_t stages, Asil level = Asil::D);

}  // namespace asilkit::scenarios

// Failure-rate tables (paper Table I).
//
// Rates are per-hour and keyed by (resource kind, ASIL readiness).  The
// paper's Table I, read as powers of ten:
//
//   kind             QM     A      B      C      D
//   splitter/merger  1e-6   1e-7   1e-8   1e-9   1e-10
//   everything else  1e-5   1e-6   1e-7   1e-8   1e-9
//
// i.e. one decade per ASIL level, and the dedicated redundancy-management
// hardware (splitter/merger) is assumed one decade more reliable than
// general-purpose hardware of the same level.  Physical locations carry a
// flat 1e-11/h "position destroyed" rate.
#pragma once

#include <array>

#include "core/asil.h"
#include "model/location.h"
#include "model/resource.h"

namespace asilkit {

class FailureRates {
public:
    /// Defaults to the paper's Table I.
    FailureRates();

    /// The paper's Table I (same as the default constructor, by name).
    [[nodiscard]] static FailureRates table1() { return FailureRates{}; }

    [[nodiscard]] double rate(ResourceKind kind, Asil asil) const noexcept;
    void set_rate(ResourceKind kind, Asil asil, double lambda) noexcept;

    [[nodiscard]] double location_rate() const noexcept { return location_rate_; }
    void set_location_rate(double lambda) noexcept { location_rate_ = lambda; }

    /// Rate of a concrete resource: the data-sheet override wins when set.
    [[nodiscard]] double resource_rate(const Resource& r) const noexcept;

    /// Rate of a concrete location (locations always carry their own rate;
    /// this exists for symmetry and future env-dependent scaling).
    [[nodiscard]] double location_rate(const Location& loc) const noexcept { return loc.lambda; }

private:
    std::array<std::array<double, kAsilLevelCount>, kResourceKindCount> rates_{};
    double location_rate_ = kDefaultLocationLambda;
};

}  // namespace asilkit

// The evaluation engine: candidate scoring as a batched, parallel,
// memoised service.
//
// Design-space exploration (paper Section IX) and the mapping search
// evaluate thousands of candidate architectures, each requiring a
// model -> fault tree -> BDD -> exact probability pipeline.  The engine
// makes that pipeline scale:
//   * a fixed thread pool evaluates independent candidates
//     concurrently — every evaluation owns its BddManager, so no locks
//     sit on the apply path (see thread_pool.h);
//   * an evaluation cache keyed by the fault tree's structural hash
//     returns previously computed probabilities for isomorphic trees
//     without touching the BDD layer (see eval_cache.h).
//
// Determinism contract: for a fixed model and options, results are
// bitwise identical regardless of thread count and cache capacity.  A
// cache hit returns exactly the double a fresh evaluation would
// produce (isomorphic trees compile to isomorphic BDDs), and callers
// that batch through the pool reduce their results in input order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/probability.h"
#include "engine/eval_cache.h"
#include "engine/thread_pool.h"
#include "model/architecture.h"

namespace asilkit::engine {

struct EngineOptions {
    /// Evaluation lanes (including the calling thread).  0 = take the
    /// ASILKIT_THREADS environment variable, falling back to
    /// std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// Maximum number of cached evaluations; 0 disables the cache.
    std::size_t cache_capacity = std::size_t{1} << 16;
};

/// Resolves `requested` (0 = ASILKIT_THREADS env var, else hardware
/// concurrency) and clamps the result to [1, 256].
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

class EvalEngine {
public:
    explicit EvalEngine(const EngineOptions& options = {});

    /// Evaluation lanes actually available, env var applied.
    [[nodiscard]] unsigned threads() const noexcept { return pool_.thread_count(); }

    /// Drop-in replacement for analysis::analyze_failure_probability,
    /// memoised by the structural hash of the generated fault tree.
    /// Thread-safe: may be called concurrently from pool tasks.
    [[nodiscard]] analysis::ProbabilityResult analyze(const ArchitectureModel& m,
                                                      const analysis::ProbabilityOptions& options);

    /// Scores every model of a batch concurrently; results in input
    /// order.  Null entries are skipped (default-constructed result).
    [[nodiscard]] std::vector<analysis::ProbabilityResult> analyze_batch(
        std::span<const ArchitectureModel* const> models,
        const analysis::ProbabilityOptions& options);

    /// The pool, for callers that parallelise more than the analysis
    /// itself (e.g. building the trial model inside the task).
    [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

    [[nodiscard]] EvalCache::Stats cache_stats() const { return cache_.stats(); }
    void clear_cache() { cache_.clear(); }

private:
    ThreadPool pool_;
    EvalCache cache_;
};

}  // namespace asilkit::engine

// Doc-drift guard: the metric and span catalogues in
// docs/observability.md are stable API, so this test greps the real
// source tree for emission sites and fails when the tables and the
// code disagree — in either direction.  A `*` in a documented id is a
// glob (e.g. `bench.*_ns` covers every bench histogram).
//
// Emission sites recognised:
//   Registry::global().counter("id") / .gauge("id") / .histogram("id"
//   time_batch(state, "id", ...)            (bench latency histograms)
//   ObsSpan name("span", "cat");  trace_instant("span", "cat")
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef ASILKIT_SOURCE_DIR
#error "ASILKIT_SOURCE_DIR must point at the repository root"
#endif

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// All .cpp/.h files under the given roots (relative to the repo).
std::vector<fs::path> source_files(const std::vector<std::string>& roots) {
    std::vector<fs::path> files;
    for (const std::string& root : roots) {
        const fs::path dir = fs::path(ASILKIT_SOURCE_DIR) / root;
        for (const fs::directory_entry& entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file()) continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".cpp" || ext == ".h") files.push_back(entry.path());
        }
    }
    return files;
}

void collect_matches(const std::string& text, const std::regex& re, unsigned group,
                     std::set<std::string>& out) {
    for (std::sregex_iterator it(text.begin(), text.end(), re), end; it != end; ++it) {
        out.insert((*it)[group].str());
    }
}

/// Metric ids emitted by src/ and bench/.
std::set<std::string> emitted_metric_ids() {
    static const std::regex registry_re(R"((?:counter|gauge|histogram)\("([^"]+)\")");
    static const std::regex bench_re(R"(time_batch\(state,\s*"([^"]+)\")");
    std::set<std::string> ids;
    for (const fs::path& file : source_files({"src", "bench"})) {
        const std::string text = read_file(file);
        collect_matches(text, registry_re, 1, ids);
        collect_matches(text, bench_re, 1, ids);
    }
    return ids;
}

/// Span names emitted by src/ and bench/.
std::set<std::string> emitted_span_names() {
    static const std::regex span_re(R"re(ObsSpan\s+\w+\("([^"]+)",\s*"[^"]+\")re");
    static const std::regex instant_re(R"re(trace_instant\("([^"]+)",\s*"[^"]+\")re");
    std::set<std::string> names;
    for (const fs::path& file : source_files({"src", "bench"})) {
        const std::string text = read_file(file);
        collect_matches(text, span_re, 1, names);
        collect_matches(text, instant_re, 1, names);
    }
    return names;
}

/// Backticked tokens from the FIRST table cell of every row between
/// `begin_heading` and the next `## ` heading.  The first cell carries
/// the ids; later cells hold prose that may backtick unrelated code.
std::set<std::string> documented_tokens(const std::string& doc,
                                        const std::string& begin_heading) {
    const std::size_t begin = doc.find(begin_heading);
    EXPECT_NE(begin, std::string::npos) << "missing section " << begin_heading;
    if (begin == std::string::npos) return {};
    std::size_t end = doc.find("\n## ", begin);
    if (end == std::string::npos) end = doc.size();

    static const std::regex token_re("`([^`]+)`");
    std::set<std::string> tokens;
    std::istringstream lines(doc.substr(begin, end - begin));
    for (std::string line; std::getline(lines, line);) {
        if (line.empty() || line[0] != '|') continue;
        const std::size_t cell_end = line.find('|', 1);
        if (cell_end == std::string::npos) continue;
        const std::string cell = line.substr(1, cell_end - 1);
        collect_matches(cell, token_re, 1, tokens);
    }
    return tokens;
}

/// Glob match where `*` matches any run of characters.
bool glob_match(const std::string& pattern, const std::string& text) {
    std::string re;
    for (const char c : pattern) {
        if (c == '*') {
            re += ".*";
        } else if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
            re += c;
        } else {
            re += '\\';
            re += c;
        }
    }
    return std::regex_match(text, std::regex(re));
}

void expect_bidirectional(const std::set<std::string>& emitted,
                          const std::set<std::string>& documented,
                          const char* what) {
    for (const std::string& id : emitted) {
        bool found = false;
        for (const std::string& doc : documented) {
            if (glob_match(doc, id)) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << what << " '" << id
                           << "' is emitted by the source but missing from "
                              "docs/observability.md";
    }
    for (const std::string& doc : documented) {
        bool live = false;
        for (const std::string& id : emitted) {
            if (glob_match(doc, id)) {
                live = true;
                break;
            }
        }
        EXPECT_TRUE(live) << what << " '" << doc
                          << "' is documented in docs/observability.md but no "
                             "longer emitted anywhere in src/ or bench/";
    }
}

TEST(DocDrift, MetricCatalogueMatchesEmissionSites) {
    const std::string doc =
        read_file(fs::path(ASILKIT_SOURCE_DIR) / "docs" / "observability.md");
    expect_bidirectional(emitted_metric_ids(),
                         documented_tokens(doc, "## Metric catalogue"), "metric");
}

TEST(DocDrift, SpanCatalogueMatchesEmissionSites) {
    const std::string doc =
        read_file(fs::path(ASILKIT_SOURCE_DIR) / "docs" / "observability.md");
    expect_bidirectional(emitted_span_names(),
                         documented_tokens(doc, "## Span catalogue"), "span");
}

/// The guard itself must not silently rot: both scans must keep finding
/// a healthy population of emission sites.
TEST(DocDrift, ScannersFindTheInstrumentation) {
    EXPECT_GE(emitted_metric_ids().size(), 30u);
    EXPECT_GE(emitted_span_names().size(), 20u);
}

}  // namespace

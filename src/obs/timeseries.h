// Time-series sampler: a background thread that periodically snapshots
// the metrics registry into per-metric fixed-capacity ring buffers of
// (steady_ns, value) points.
//
// The registry alone answers "how much, in total"; a long-running
// process (the `asilkit serve` daemon of ROADMAP item 1, or a multi-
// minute bench sweep) needs "how much, WHEN" — cache hit rate over the
// run, BDD node high-water as candidates stream through, queue depth
// under load.  The sampler provides that without touching any hot
// path: it only ever reads the registry's atomics from its own thread,
// so instrumentation sites are completely unaware of it and a run with
// the sampler on is bitwise identical to one without (tested in
// tests/test_obs.cpp at threads 1/2/4/8).
//
// Cost model: zero when not started (no thread, no allocation — the
// PR-4 one-branch contract trivially holds because there is not even a
// branch); when started, one registry snapshot per period on a
// dedicated thread, never on workers.
//
// Per tick the sampler can also:
//   * append one NDJSON line ({"ts_ns":..,"metrics":{...}}) to a file
//     for live tailing,
//   * rewrite an OpenMetrics exposition file (obs/openmetrics.h) for a
//     file-based Prometheus scrape,
//   * evaluate an attached threshold watchdog (obs/watchdog.h).
//
// Sampled series: every counter and gauge under its registry id, plus
// `<id>.count` / `<id>.sum` projections of every histogram.  Rings keep
// the most recent `capacity` points; older points fall off the back.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"

namespace asilkit::obs {

class Watchdog;

struct TimeSeriesOptions {
    std::chrono::milliseconds period{1000};
    std::size_t capacity = 600;  ///< points retained per series
    std::string ndjson_path;     ///< append one line per tick when set
    std::string openmetrics_path;  ///< rewrite exposition per tick when set
};

/// Export of every ring at one moment, points in chronological order.
struct TimeSeriesSnapshot {
    struct Point {
        std::uint64_t ts_ns;  ///< steady-clock ns since the sampler's epoch
        double value;
    };
    struct Series {
        std::string id;
        std::string kind;  ///< "counter", "gauge" or "histogram"
        std::vector<Point> points;
    };

    std::vector<Series> series;  ///< sorted by id
    std::uint64_t ticks = 0;
    std::uint64_t period_ms = 0;
    std::size_t capacity = 0;

    [[nodiscard]] const Series* find(std::string_view id) const noexcept;
    /// {"period_ms":..,"capacity":..,"ticks":..,
    ///  "series":[{"id","kind","points":[[ts_ns,value],..]},..]}
    [[nodiscard]] std::string to_json() const;
};

class TimeSeriesSampler {
public:
    explicit TimeSeriesSampler(TimeSeriesOptions options = {});
    /// Stops and joins the background thread if still running.
    ~TimeSeriesSampler();

    TimeSeriesSampler(const TimeSeriesSampler&) = delete;
    TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

    /// Attach a watchdog evaluated on every tick (not owned; must
    /// outlive sampling).  Attach before start().
    void attach_watchdog(Watchdog* watchdog);

    /// Launches the sampler thread; the first tick is immediate, then
    /// one per period.  Idempotent while running.
    void start();
    /// Stops and joins.  Buffered series stay available for snapshot().
    void stop();
    [[nodiscard]] bool running() const;

    /// Takes one sample synchronously on the calling thread — the CLI's
    /// final flush before export, and the unit tests' deterministic
    /// driver (no background thread needed).
    void sample_now();

    [[nodiscard]] TimeSeriesSnapshot snapshot() const;
    [[nodiscard]] std::uint64_t ticks() const;

private:
    /// Fixed-capacity ring: `points` grows to capacity then wraps,
    /// `next` marks the slot the next point lands in.
    struct Ring {
        std::string kind;
        std::vector<TimeSeriesSnapshot::Point> points;
        std::size_t next = 0;
    };

    void run();
    void tick() EXCLUDES(data_mutex_);
    void push_point(const std::string& id, const char* kind, std::uint64_t ts_ns,
                    double value) REQUIRES(data_mutex_);

    const TimeSeriesOptions options_;
    const std::chrono::steady_clock::time_point epoch_;

    mutable core::Mutex mutex_;  // thread lifecycle
    core::CondVar cv_;
    bool stop_requested_ GUARDED_BY(mutex_) = false;
    std::thread worker_ GUARDED_BY(mutex_);

    mutable core::Mutex data_mutex_;  // rings + sinks
    std::map<std::string, Ring> series_ GUARDED_BY(data_mutex_);
    std::uint64_t ticks_ GUARDED_BY(data_mutex_) = 0;
    std::ofstream ndjson_ GUARDED_BY(data_mutex_);
    Watchdog* watchdog_ GUARDED_BY(data_mutex_) = nullptr;
};

}  // namespace asilkit::obs

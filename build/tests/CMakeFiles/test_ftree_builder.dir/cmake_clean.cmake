file(REMOVE_RECURSE
  "CMakeFiles/test_ftree_builder.dir/test_ftree_builder.cpp.o"
  "CMakeFiles/test_ftree_builder.dir/test_ftree_builder.cpp.o.d"
  "test_ftree_builder"
  "test_ftree_builder.pdb"
  "test_ftree_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftree_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

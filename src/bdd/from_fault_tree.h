// Fault-tree -> BDD compilation (paper Section V).
//
// Variable ordering follows the paper: a breadth-first, left-to-right
// traversal of the fault tree from the top event, assigning increasing
// variable indices to basic events in first-seen order "so that the base
// events that impact more directly the Top Level Event come first".
// Gates then become apply() chains: OR children are combined with
// BddOp::Or, AND children with BddOp::And — the "+" and "*" of the
// paper's ITE formulation.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "ftree/fault_tree.h"

namespace asilkit::bdd {

/// Basic-event indices in the paper's top-down / left-to-right variable
/// order (restricted to events reachable from the top gate).
[[nodiscard]] std::vector<std::uint32_t> ft_variable_order(const ftree::FaultTree& ft);

/// A compiled fault tree: the manager owning the diagram, the root
/// function, and the var -> basic-event-index mapping.
struct CompiledFaultTree {
    BddManager manager;
    BddRef root = kFalse;
    /// event_of_var[v] = index of the basic event assigned to variable v.
    std::vector<std::uint32_t> event_of_var;

    /// Per-variable failure probabilities for a mission of `hours`,
    /// p = 1 - exp(-lambda * t), aligned with the manager's variables.
    [[nodiscard]] std::vector<double> variable_probabilities(const ftree::FaultTree& ft,
                                                             double hours) const;
};

/// Compiles with the paper's default ordering, or with an explicit order
/// (a permutation of reachable basic-event indices) for ordering studies.
[[nodiscard]] CompiledFaultTree compile_fault_tree(const ftree::FaultTree& ft);
[[nodiscard]] CompiledFaultTree compile_fault_tree(const ftree::FaultTree& ft,
                                                   const std::vector<std::uint32_t>& event_order);

/// p = 1 - exp(-lambda * hours); for lambda*t << 1 this is ~= lambda * t,
/// which is why the paper quotes probabilities numerically equal to rates
/// at t = 1 h.
[[nodiscard]] double basic_event_probability(double lambda, double hours) noexcept;

}  // namespace asilkit::bdd

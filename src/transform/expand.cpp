#include "transform/expand.h"

#include <algorithm>
#include <string>

#include "core/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::transform {
namespace {

struct Neighbour {
    NodeId node;
    Channel channel;
};

/// A dedicated resource + placement for a freshly created node; the FSR
/// of the expanded node is carried onto every node of the new block so
/// requirement traceability survives the transformation.
NodeId add_node_at(ArchitectureModel& m, AppNode node, LocationId loc, const std::string& fsr) {
    node.fsr = fsr;
    return m.add_node_with_dedicated_resource(std::move(node), loc);
}

LocationId ensure_location(ArchitectureModel& m, LocationId requested, const std::string& name) {
    if (requested.valid()) return requested;
    return m.add_location(Location{name, kDefaultLocationLambda, {}});
}

}  // namespace

std::vector<Asil> branch_levels(Asil parent, DecompositionStrategy strategy,
                                std::size_t branches, std::span<const double> rng_draws) {
    if (branches < 2) {
        throw TransformError("branch_levels: a redundant block needs >= 2 branches");
    }
    auto draw_at = [&](std::size_t i) {
        return i < rng_draws.size() ? rng_draws[i] : 0.0;
    };
    // Repeated two-way splitting of the strongest branch so far.  The
    // strongest branch is the one whose further decomposition reduces the
    // highest remaining requirement; QM branches cannot split further.
    std::vector<Asil> levels;
    const DecompositionPattern first = select_pattern(parent, strategy, draw_at(0));
    levels.push_back(first.left);
    levels.push_back(first.right);
    std::size_t split_index = 1;
    while (levels.size() < branches) {
        std::sort(levels.begin(), levels.end(),
                  [](Asil a, Asil b) { return asil_value(a) > asil_value(b); });
        Asil& strongest = levels.front();
        if (strongest == Asil::QM) {
            throw TransformError("branch_levels: cannot split further (all branches are QM)");
        }
        const DecompositionPattern p =
            select_pattern(strongest, strategy, draw_at(split_index++));
        strongest = p.left;
        levels.push_back(p.right);
    }
    std::sort(levels.begin(), levels.end(),
              [](Asil a, Asil b) { return asil_value(a) > asil_value(b); });
    return levels;
}

ExpandResult expand(ArchitectureModel& m, NodeId node, const ExpandOptions& options) {
    static obs::Counter& ops = obs::Registry::global().counter("transform.expand.ops");
    ops.inc();
    const obs::ObsSpan span("expand", "transform");
    const AppNode original = m.app().node(node);  // copy: the node is erased below
    if (original.kind != NodeKind::Functional && original.kind != NodeKind::Communication) {
        throw TransformError("Expand(" + original.name + "): only functional and communication "
                             "nodes can be expanded, not " + std::string(to_string(original.kind)));
    }
    if (m.app().in_degree(node) < 1 || m.app().out_degree(node) < 1) {
        throw TransformError("Expand(" + original.name + "): node needs >=1 input and >=1 output");
    }
    if (original.asil.level == Asil::QM) {
        throw TransformError("Expand(" + original.name + "): a QM requirement has nothing to decompose");
    }
    const std::size_t branches = options.branches;
    if (branches < 2) {
        throw TransformError("Expand(" + original.name + "): needs >= 2 branches");
    }
    if (!options.branch_locations.empty() && options.branch_locations.size() != branches) {
        throw TransformError("Expand(" + original.name +
                             "): branch_locations must be empty or match the branch count");
    }

    ExpandResult result;
    result.branch_levels =
        branch_levels(original.asil.level, options.strategy, branches, options.rng_draws);
    result.pattern = select_pattern(original.asil.level, options.strategy,
                                    options.rng_draws.empty() ? 0.0 : options.rng_draws[0]);
    const Asil parent = original.asil.level;
    const Asil management_level = options.splitter_merger_asil.value_or(parent);

    // Capture the neighbourhood before erasing the node.
    std::vector<Neighbour> inputs;
    for (ChannelId e : m.app().in_edges(node)) {
        inputs.push_back(Neighbour{m.app().edge(e).source, m.app().edge(e).data});
    }
    std::vector<Neighbour> outputs;
    for (ChannelId e : m.app().out_edges(node)) {
        outputs.push_back(Neighbour{m.app().edge(e).sink, m.app().edge(e).data});
    }

    // Placement.
    LocationId management_loc = options.management_location;
    if (!management_loc.valid()) {
        const auto locs = m.node_locations(node);
        management_loc = locs.empty()
                             ? ensure_location(m, LocationId{}, "loc_" + original.name + "_mgmt")
                             : locs.front();
    }
    std::vector<LocationId> branch_loc(branches);
    for (std::size_t b = 0; b < branches; ++b) {
        branch_loc[b] = options.branch_locations.empty()
                            ? ensure_location(m, LocationId{},
                                              "loc_" + original.name + "_b" + std::to_string(b + 1))
                            : options.branch_locations[b];
    }

    const std::size_t nodes_before = m.app().node_count();
    m.erase_app_node(node, /*drop_dedicated_resources=*/true);

    const AsilTag management_tag{management_level, parent};

    // Splitters: one per original input edge.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::string suffix = inputs.size() > 1 ? "_" + std::to_string(i + 1) : "";
        if (original.kind == NodeKind::Communication) {
            // New communication node between the producer and the splitter.
            const NodeId pre = add_node_at(
                m, AppNode{"c_pre_" + original.name + suffix, NodeKind::Communication, management_tag, {}},
                management_loc, original.fsr);
            m.connect_app(inputs[i].node, pre, inputs[i].channel);
            const NodeId s = add_node_at(
                m, AppNode{"split_" + original.name + suffix, NodeKind::Splitter, management_tag, {}},
                management_loc, original.fsr);
            m.connect_app(pre, s);
            result.splitters.push_back(s);
        } else {
            const NodeId s = add_node_at(
                m, AppNode{"split_" + original.name + suffix, NodeKind::Splitter, management_tag, {}},
                management_loc, original.fsr);
            m.connect_app(inputs[i].node, s, inputs[i].channel);
            result.splitters.push_back(s);
        }
    }

    // Mergers: one per original output edge.
    for (std::size_t j = 0; j < outputs.size(); ++j) {
        const std::string suffix = outputs.size() > 1 ? "_" + std::to_string(j + 1) : "";
        const NodeId mg = add_node_at(
            m, AppNode{"merge_" + original.name + suffix, NodeKind::Merger, management_tag, {}},
            management_loc, original.fsr);
        if (original.kind == NodeKind::Communication) {
            const NodeId post = add_node_at(
                m,
                AppNode{"c_post_" + original.name + suffix, NodeKind::Communication, management_tag, {}},
                management_loc, original.fsr);
            m.connect_app(mg, post);
            m.connect_app(post, outputs[j].node, outputs[j].channel);
        } else {
            m.connect_app(mg, outputs[j].node, outputs[j].channel);
        }
        result.mergers.push_back(mg);
    }

    // Branches.
    for (std::size_t b = 0; b < branches; ++b) {
        const AsilTag branch_tag{result.branch_levels[b], parent};
        const std::string bsuf = "_" + std::to_string(b + 1);
        std::vector<NodeId> branch_nodes;

        if (original.kind == NodeKind::Communication) {
            // One communication node per branch, fed by every splitter and
            // feeding every merger.
            const NodeId cb = add_node_at(
                m, AppNode{original.name + bsuf, NodeKind::Communication, branch_tag, {}}, branch_loc[b], original.fsr);
            branch_nodes.push_back(cb);
            result.replicas.push_back(cb);
            for (NodeId s : result.splitters) m.connect_app(s, cb);
            for (NodeId mg : result.mergers) m.connect_app(cb, mg);
        } else {
            const NodeId replica = add_node_at(
                m, AppNode{original.name + bsuf, NodeKind::Functional, branch_tag, {}}, branch_loc[b], original.fsr);
            result.replicas.push_back(replica);
            for (std::size_t i = 0; i < result.splitters.size(); ++i) {
                const NodeId cin = add_node_at(
                    m,
                    AppNode{"c_in_" + original.name + bsuf +
                                (result.splitters.size() > 1 ? "_" + std::to_string(i + 1) : ""),
                            NodeKind::Communication, branch_tag, {}},
                    branch_loc[b], original.fsr);
                m.connect_app(result.splitters[i], cin);
                m.connect_app(cin, replica);
                branch_nodes.push_back(cin);
            }
            branch_nodes.push_back(replica);
            for (std::size_t j = 0; j < result.mergers.size(); ++j) {
                const NodeId cout = add_node_at(
                    m,
                    AppNode{"c_out_" + original.name + bsuf +
                                (result.mergers.size() > 1 ? "_" + std::to_string(j + 1) : ""),
                            NodeKind::Communication, branch_tag, {}},
                    branch_loc[b], original.fsr);
                m.connect_app(replica, cout);
                m.connect_app(cout, result.mergers[j]);
                branch_nodes.push_back(cout);
            }
        }
        result.branches.push_back(std::move(branch_nodes));
    }

    result.nodes_added = m.app().node_count() - nodes_before;
    return result;
}

}  // namespace asilkit::transform

file(REMOVE_RECURSE
  "CMakeFiles/test_model_json.dir/test_model_json.cpp.o"
  "CMakeFiles/test_model_json.dir/test_model_json.cpp.o.d"
  "test_model_json"
  "test_model_json.pdb"
  "test_model_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

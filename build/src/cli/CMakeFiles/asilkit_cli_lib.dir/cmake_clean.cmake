file(REMOVE_RECURSE
  "CMakeFiles/asilkit_cli_lib.dir/cli.cpp.o"
  "CMakeFiles/asilkit_cli_lib.dir/cli.cpp.o.d"
  "libasilkit_cli_lib.a"
  "libasilkit_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

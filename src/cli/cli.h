// Command-line interface for asilkit, as a testable library function.
//
// The `asilkit_cli` binary is a thin wrapper around run_cli(); every
// subcommand reads a JSON model (io::model_json schema), performs one
// operation, and either prints a report or writes a transformed model.
//
//   asilkit_cli demo <fig3|fig3-ccf|ecotwin|longitudinal> -o model.json
//   asilkit_cli validate  model.json [--strict]
//   asilkit_cli lint      model.json [--format text|json|sarif] [--rules cfg.json] [-o report]
//   asilkit_cli analyze   model.json [--approximate] [--hours H] [--metric 1|2|3]
//   asilkit_cli ccf       model.json
//   asilkit_cli tolerance model.json [--max-order K]
//   asilkit_cli advise    model.json [--strategy BB|AC|RND] [--branches N]
//   asilkit_cli expand    model.json --node NAME [--strategy S] [--branches N] -o out.json
//   asilkit_cli connect   model.json [--merger NAME | --all] -o out.json
//   asilkit_cli reduce    model.json -o out.json
//   asilkit_cli explore   model.json --nodes a,b,c [--strategy S] [--metric M]
//                         [--csv curve.csv] [-o final.json]
//   asilkit_cli export    model.json --layer app|resources|physical|ftree -o out.dot
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace asilkit::cli {

/// Runs one CLI invocation.  `args` excludes the program name.  Reports
/// go to `out`, errors to `err`.  Returns a process exit code (0 = ok,
/// 1 = user/input error, 2 = usage error).
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// The usage text printed on `--help` / usage errors.
[[nodiscard]] std::string usage();

}  // namespace asilkit::cli

#include "explore/tradeoff.h"

#include <ostream>

#include "cost/cost_analysis.h"

namespace asilkit::explore {

std::ostream& operator<<(std::ostream& os, const TradeoffPoint& p) {
    return os << p.label << ": cost=" << p.cost << ", P(fail)=" << p.failure_probability
              << ", app_nodes=" << p.app_nodes << ", resources=" << p.resources
              << ", ft_nodes=" << p.ft_dag_nodes << ", ft_paths=" << p.ft_paths
              << ", bdd_nodes=" << p.bdd_nodes;
}

TradeoffPoint measure_point(const ArchitectureModel& m, std::string label,
                            const cost::CostMetric& metric,
                            const analysis::ProbabilityOptions& prob_options) {
    TradeoffPoint point;
    point.label = std::move(label);
    point.cost = cost::total_cost(m, metric);
    const analysis::ProbabilityResult prob = analysis::analyze_failure_probability(m, prob_options);
    point.failure_probability = prob.failure_probability;
    point.app_nodes = m.app().node_count();
    point.resources = m.resources().node_count();
    point.ft_dag_nodes = prob.ft_stats.dag_nodes;
    point.ft_paths = prob.ft_stats.paths;
    point.bdd_nodes = prob.bdd_nodes;
    return point;
}

}  // namespace asilkit::explore

#pragma once
#include "alpha/b.h"
inline int beta_c() { return alpha_b(); }

file(REMOVE_RECURSE
  "CMakeFiles/test_model_diff.dir/test_model_diff.cpp.o"
  "CMakeFiles/test_model_diff.dir/test_model_diff.cpp.o.d"
  "test_model_diff"
  "test_model_diff.pdb"
  "test_model_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

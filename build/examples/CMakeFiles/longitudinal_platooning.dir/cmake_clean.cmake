file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_platooning.dir/longitudinal_platooning.cpp.o"
  "CMakeFiles/longitudinal_platooning.dir/longitudinal_platooning.cpp.o.d"
  "longitudinal_platooning"
  "longitudinal_platooning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_platooning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/asilkit_cost.dir/cost_analysis.cpp.o"
  "CMakeFiles/asilkit_cost.dir/cost_analysis.cpp.o.d"
  "CMakeFiles/asilkit_cost.dir/cost_metric.cpp.o"
  "CMakeFiles/asilkit_cost.dir/cost_metric.cpp.o.d"
  "libasilkit_cost.a"
  "libasilkit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

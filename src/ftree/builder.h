// Automatic fault-tree generation from the architecture model (Section V).
//
// The application graph is explored from the actuators backwards to the
// sensors.  Each application node contributes an OR gate combining
//   * its intrinsic base events — one per mapped resource, one per
//     physical location hosting those resources — and
//   * the failure gates of its input nodes,
// with one exception: a MERGER combines its inputs through an AND gate,
// because the merger can pick whichever redundant input is still correct,
// so the redundant inputs must all fail for the merger's output to fail.
//
// Cycles (the application graph is a DCG) are cut: a back edge found
// during the traversal is simply not followed, matching the paper
// ("cyclic dependencies are not analyzed with the FTA").
//
// The Section V approximation removes the base events of the nodes that
// form the redundant branches and wires each merger input directly to the
// failure gates of the splitters feeding that branch.  It is applied only
// where it is sound: the block must be well-formed and its branches must
// not share base events (shared events are exactly the Common Cause
// Faults that would also invalidate the decomposition); otherwise the
// builder falls back to the exact expansion for that block and reports a
// warning.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ftree/fault_tree.h"
#include "model/architecture.h"
#include "model/failure_rates.h"

namespace asilkit::ftree {

struct FtBuildOptions {
    /// Apply the Section V path-collapsing approximation.
    bool approximate = false;
    /// Contribute a base event per physical location (1e-11/h by default).
    bool include_location_events = true;
    /// Include QM actuators in the top event.  Off by default: the top
    /// event is the failure of the SAFETY function, and a QM actuator
    /// (e.g. a driver display) is by definition not safety-relevant.
    /// When the model has no actuator above QM, all actuators are used.
    bool include_qm_actuators = false;
    /// Failure-rate table (defaults to paper Table I).
    FailureRates rates{};
};

struct FtBuildResult {
    FaultTree tree;
    /// Soundness diagnostics: CCF-driven approximation fallbacks, nodes
    /// with no mapped resources, ...
    std::vector<std::string> warnings;
    std::size_t approximated_blocks = 0;  ///< blocks collapsed by the approximation
    std::size_t cycles_cut = 0;           ///< back edges dropped during traversal
};

/// Prefix conventions for generated event/gate names; analyses and tests
/// key off these.
inline constexpr const char* kResourceEventPrefix = "res:";
inline constexpr const char* kLocationEventPrefix = "loc:";
inline constexpr const char* kNodeGatePrefix = "fail:";

/// Generates the system fault tree.  The top event is the failure of the
/// single actuator, or an OR over all actuators when there are several.
/// Throws AnalysisError when the model has no actuator.
[[nodiscard]] FtBuildResult build_fault_tree(const ArchitectureModel& m,
                                             const FtBuildOptions& options = {});

}  // namespace asilkit::ftree

// Seeded synthetic model generator for scalability studies and
// randomized property tests.
//
// Generates layered sensor -> processing -> actuator DAGs whose size and
// fan-in/out are parameterized; every node sits on dedicated hardware.
// The generator is a pure function of its options (std::mt19937 with the
// given seed), so tests and benches are reproducible.
#pragma once

#include <cstdint>

#include "ftree/fault_tree.h"
#include "model/architecture.h"

namespace asilkit::scenarios {

struct SyntheticOptions {
    std::uint32_t seed = 1;
    std::size_t sensors = 3;
    std::size_t layers = 3;            ///< functional layers between sensors and actuators
    std::size_t width = 3;             ///< functional nodes per layer
    std::size_t actuators = 1;
    double extra_edge_probability = 0.2;  ///< chance of a second input per node
    Asil level = Asil::D;              ///< requirement level of every node
};

[[nodiscard]] ArchitectureModel synthetic_model(const SyntheticOptions& options = {});

/// Parameters for synthetic_fault_tree().  Sizes are exact: the result
/// has `events` basic events and `gates + 1` gates (the extra one is
/// the top gate that ORs together every otherwise-unreferenced root, so
/// all nodes contribute to the top event).
struct SyntheticTreeOptions {
    std::uint32_t seed = 1;
    std::size_t events = 64;       ///< basic events (leaves)
    std::size_t gates = 32;        ///< internal AND/OR gates
    std::size_t max_arity = 4;     ///< children per gate, uniform in [2, max_arity]
    double and_fraction = 0.4;     ///< probability a gate is an AND
    double lambda_low = 1e-7;      ///< per-hour failure rates, log-uniform
    double lambda_high = 1e-4;     ///< in [lambda_low, lambda_high]
};

/// Seeded random fault-tree DAG for Monte Carlo / BDD scalability
/// sweeps (docs/simulation.md).  Gates draw children from the pool of
/// earlier nodes, so the result is acyclic by construction and scales
/// to ~10^5 nodes in milliseconds.  Pure function of the options.
[[nodiscard]] ftree::FaultTree synthetic_fault_tree(const SyntheticTreeOptions& options = {});

}  // namespace asilkit::scenarios

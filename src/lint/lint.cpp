#include "lint/lint.h"

#include <algorithm>
#include <ostream>

#include "core/error.h"
#include "io/json.h"

namespace asilkit::lint {

std::string_view to_string(Severity s) noexcept {
    switch (s) {
        case Severity::Off: return "off";
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

Severity severity_from_string(std::string_view text) {
    if (text == "off") return Severity::Off;
    if (text == "note") return Severity::Note;
    if (text == "warning") return Severity::Warning;
    if (text == "error") return Severity::Error;
    throw IoError("unknown lint severity '" + std::string(text) +
                  "' (expected off, note, warning or error)");
}

std::string_view to_string(Layer l) noexcept {
    switch (l) {
        case Layer::Application: return "app";
        case Layer::Resource: return "resource";
        case Layer::Physical: return "physical";
        case Layer::Mapping: return "mapping";
    }
    return "?";
}

ModelLocation ModelLocation::app_node(const ArchitectureModel& m, NodeId n) {
    return {Layer::Application, n.value(), m.app().node(n).name};
}

ModelLocation ModelLocation::resource(const ArchitectureModel& m, ResourceId r) {
    return {Layer::Resource, r.value(), m.resources().node(r).name};
}

ModelLocation ModelLocation::location(const ArchitectureModel& m, LocationId p) {
    return {Layer::Physical, p.value(), m.physical().node(p).name};
}

std::string ModelLocation::qualified_name() const {
    return std::string(to_string(layer)) + ":" + name;
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
    os << to_string(d.severity) << " [" << d.rule_id << "] " << d.location.qualified_name()
       << ": " << d.message;
    if (!d.fixit.empty()) os << "\n  fix-it: " << d.fixit;
    return os;
}

std::size_t LintReport::count(Severity s) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [s](const Diagnostic& d) { return d.severity == s; }));
}

bool LintReport::has(std::string_view rule_id) const noexcept {
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [rule_id](const Diagnostic& d) { return d.rule_id == rule_id; });
}

LintContext::LintContext(const ArchitectureModel& m)
    : model_(m), blocks_(find_redundant_blocks(m)), ccf_(analysis::analyze_ccf(m)) {}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
    if (find(rule->info().id) != nullptr) {
        throw ModelError("duplicate lint rule id '" + std::string(rule->info().id) + "'");
    }
    rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id) const noexcept {
    for (const auto& rule : rules_) {
        if (rule->info().id == id) return rule.get();
    }
    return nullptr;
}

Severity LintConfig::effective(const RuleInfo& info) const noexcept {
    if (const auto it = overrides.find(info.id); it != overrides.end()) return it->second;
    return info.default_severity;
}

namespace {

LintConfig config_from_json(const io::Json& doc) {
    LintConfig config;
    if (!doc.contains("rules")) return config;
    for (const auto& [id, value] : doc.at("rules").as_object()) {
        if (RuleRegistry::builtin().find(id) == nullptr) {
            throw IoError("lint config names unknown rule '" + id + "'");
        }
        config.overrides[id] = severity_from_string(value.as_string());
    }
    return config;
}

}  // namespace

LintConfig lint_config_from_json_text(std::string_view text) {
    return config_from_json(io::Json::parse(text));
}

LintConfig load_lint_config(const std::string& path) {
    return config_from_json(io::load_json_file(path));
}

LintReport run_lint(const ArchitectureModel& m, const LintOptions& options) {
    return run_lint(m, RuleRegistry::builtin(), options);
}

LintReport run_lint(const ArchitectureModel& m, const RuleRegistry& registry,
                    const LintOptions& options) {
    const LintContext ctx(m);
    LintReport report;
    std::vector<Finding> findings;
    for (const auto& rule : registry.rules()) {
        const Severity severity = options.config.effective(rule->info());
        if (severity == Severity::Off) continue;
        if (options.errors_only && severity != Severity::Error) continue;
        findings.clear();
        rule->run(ctx, findings);
        for (Finding& f : findings) {
            report.diagnostics.push_back({std::string(rule->info().id), severity,
                                          std::move(f.message), std::move(f.location),
                                          std::move(f.fixit)});
        }
    }
    return report;
}

std::size_t structural_error_count(const ArchitectureModel& m) {
    LintOptions options;
    options.errors_only = true;
    return run_lint(m, options).diagnostics.size();
}

}  // namespace asilkit::lint

// The exploration driver: the paper's experiment loop (Section IX).
//
// Starting from an "ideal" architecture (every node at its required ASIL
// on dedicated ASIL-ready hardware), the driver replays the EcoTwin
// design flow:
//   1. Expand() each selected node (points A ... B of Fig. 12),
//   2. Connect() + Reduce() until no pair remains (... point C),
//   3. in-branch mapping optimisation (point D),
// measuring cost and failure probability after every step.  The RND
// strategy draws from a seeded generator owned by the driver, so a curve
// is a pure function of (model, node list, options).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/probability.h"
#include "core/decomposition.h"
#include "cost/cost_metric.h"
#include "engine/engine.h"
#include "explore/tradeoff.h"
#include "model/architecture.h"

namespace asilkit::explore {

struct ExplorationOptions {
    DecompositionStrategy strategy = DecompositionStrategy::BB;
    cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions probability{};
    /// ASIL for new splitters/mergers; nullopt keeps each expanded node's
    /// original level (the paper's configuration).
    std::optional<Asil> splitter_merger_asil;
    unsigned rng_seed = 42;  ///< consumed only by the RND strategy
    bool run_connect_reduce = true;
    bool run_mapping_optimization = true;
    /// Also consolidate trunk (non-branch) functional/communication nodes
    /// onto shared hardware during the mapping phase.
    bool trunk_consolidation = false;
    /// Record a point after every individual connect (otherwise only
    /// after the whole phase).
    bool record_each_connect = true;
    /// Evaluation engine used for every curve point (thread count and
    /// eval-cache capacity).  The flow itself is sequential; the engine
    /// memoises repeated measurements of isomorphic states, and results
    /// are bitwise identical for any thread/cache setting.
    engine::EngineOptions engine{};
};

struct ExplorationResult {
    TradeoffCurve curve;
    ArchitectureModel final_model;
    std::size_t expansions = 0;
    std::size_t connects = 0;
    std::size_t reductions = 0;
    std::size_t mapping_groups_merged = 0;
    /// Eval-cache counters over the whole run (hits/misses/evictions).
    engine::EvalCache::Stats engine_cache{};
    /// Full engine counters: analyze calls plus the tree/module hit-miss
    /// split (module counters are zero when options.engine.modularize is
    /// off).
    engine::EvalEngine::Stats engine_stats{};
};

/// Runs the flow on a copy of `model`, expanding the nodes named in
/// `nodes_to_expand` (names, not ids: ids do not survive the expansions).
/// Unknown names throw TransformError.
[[nodiscard]] ExplorationResult run_exploration(const ArchitectureModel& model,
                                                const std::vector<std::string>& nodes_to_expand,
                                                const ExplorationOptions& options = {});

}  // namespace asilkit::explore

// Ablation: the BDD engine itself.
//
// The paper reports that fault-tree -> BDD conversion cost "grows
// exponentially with the number of redundant blocks" in its
// implementation; a memoised apply() (unique table + operation cache)
// bounds each conversion polynomially in the diagram size.  This bench
// measures compile and evaluation cost vs model size and the effect of
// the paper's top-down/left-right variable ordering against a worst-case
// reversed ordering.
#include "bench_util.h"

#include <algorithm>

#include "bdd/from_fault_tree.h"
#include "ftree/builder.h"
#include "scenarios/micro.h"
#include "scenarios/synthetic.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ftree::FaultTree tree_with_blocks(std::size_t blocks) {
    ArchitectureModel m = scenarios::chain_n_stages(blocks);
    for (std::size_t i = 1; i <= blocks; ++i) {
        transform::expand(m, m.find_app_node("f" + std::to_string(i)));
    }
    return ftree::build_fault_tree(m).tree;
}

void print_report() {
    bench::heading("BDD size vs number of redundant blocks (paper ordering)");
    std::printf("  %-8s %-12s %-12s %-14s %-14s\n", "blocks", "variables", "bdd nodes",
                "bdd(reversed)", "ft paths");
    for (std::size_t blocks : {1u, 2u, 4u, 8u, 12u}) {
        const ftree::FaultTree ft = tree_with_blocks(blocks);
        const auto compiled = bdd::compile_fault_tree(ft);
        auto order = bdd::ft_variable_order(ft);
        std::reverse(order.begin(), order.end());
        const auto reversed = bdd::compile_fault_tree(ft, order);
        std::printf("  %-8zu %-12zu %-12zu %-14zu %-14llu\n", blocks,
                    compiled.event_of_var.size(), compiled.manager.node_count(compiled.root),
                    reversed.manager.node_count(reversed.root),
                    static_cast<unsigned long long>(ft.stats().paths));
    }
    bench::note("the memoised apply() keeps BDD growth linear in blocks even though");
    bench::note("the fault tree's path count doubles per block (the 2^n the paper");
    bench::note("works around with its approximation).");
}

void BM_CompileFaultTree(benchmark::State& state) {
    const ftree::FaultTree ft = tree_with_blocks(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(bdd::compile_fault_tree(ft));
    }
    state.SetLabel(std::to_string(state.range(0)) + " blocks");
}
BENCHMARK(BM_CompileFaultTree)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_ProbabilityEvaluation(benchmark::State& state) {
    const ftree::FaultTree ft = tree_with_blocks(static_cast<std::size_t>(state.range(0)));
    const auto compiled = bdd::compile_fault_tree(ft);
    const auto probs = compiled.variable_probabilities(ft, 1.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compiled.manager.probability(compiled.root, probs));
    }
    state.SetLabel(std::to_string(state.range(0)) + " blocks");
}
BENCHMARK(BM_ProbabilityEvaluation)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_SyntheticCompile(benchmark::State& state) {
    scenarios::SyntheticOptions options;
    options.layers = static_cast<std::size_t>(state.range(0));
    options.width = 4;
    const ArchitectureModel m = scenarios::synthetic_model(options);
    const ftree::FaultTree ft = ftree::build_fault_tree(m).tree;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bdd::compile_fault_tree(ft));
    }
    state.SetLabel(std::to_string(state.range(0)) + " layers");
}
BENCHMARK(BM_SyntheticCompile)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// Bound-pruned anytime search benchmark: the staged generate -> lint ->
// bound-check -> evaluate pipeline against the exhaustive search on the
// EcoTwin trade-off sweep.
//
// Workload: the EcoTwin lateral-control model with most of its decision
// chain expanded (redundant branches everywhere, so iterations carry
// many same-region candidates and every evaluation pays a sizeable
// fault tree), swept across capacity x metric configurations on one
// shared engine — the driver's trade-off loop in miniature.  "On" runs with admissible bound pruning and the
// engine's cross-branch candidate dedup; "off" evaluates every candidate
// and remembers nothing beyond the LRU cache.  Results are bitwise
// identical either way (asserted in tests/test_mapping_search.cpp); only
// the work differs.
//
// Counters exported per timing (consumed by tools/bench_to_json):
//   evals             engine submissions over the sweep
//   full_evals        tree-cache misses: candidates that paid the full
//                     fault-tree + BDD pipeline (dedup and LRU hits are
//                     both tree hits, so misses already exclude them)
//   bound_rejections  candidates pruned by the bound check alone
//   dedup_hits        evaluations served by the candidate memo
//   candidates        (BM_BoundCheck) bounds computed per iteration
//   offers            (BM_FrontUpdate) tracker offers per iteration
#include "bench_util.h"

#include <random>

#include "analysis/probability.h"
#include "cost/cost_analysis.h"
#include "explore/bounds.h"
#include "explore/mapping_search.h"
#include "explore/pareto.h"
#include "scenarios/ecotwin.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ArchitectureModel workload() {
    ArchitectureModel m = scenarios::ecotwin_lateral_control();
    // Expand most of the communication-heavy decision chain: redundant
    // branches everywhere make candidate evaluations genuinely costly
    // (large fault trees, many modules) — the regime the staged
    // pipeline is built for.
    for (const char* n :
         {"objs_eth", "objs_bb", "env_out", "wm_eth", "wm_can", "lateral_control", "ctrl_out"}) {
        transform::expand(m, m.find_app_node(n));
    }
    // Field-calibrated per-instance rates: identical part types across
    // redundant branches never fail at exactly the data-sheet number, so
    // give every instance a deterministic spread around its Table-I
    // rate.  The spread separates candidate merges on the objective —
    // the regime admissible bounds are built for.  (Perfectly
    // mirror-symmetric rates instead make many candidates exact ties,
    // which no strict lower bound may prune; the on/off identity tests
    // cover that regime.)
    std::size_t instance = 0;
    for (ResourceId r : m.used_resources()) {
        const double calibrated =
            m.resource_lambda(r) * (1.0 + 0.003 * static_cast<double>(++instance));
        m.resources().node(r).lambda_override = calibrated;
    }
    return m;
}

struct SweepTotals {
    std::uint64_t evals = 0;
    std::uint64_t full_evals = 0;
    std::uint64_t bound_rejections = 0;
    std::uint64_t dedup_hits = 0;
};

/// The trade-off sweep: capacity x metric configurations of the mapping
/// search over one shared engine, as an iterative DSE driver runs them.
SweepTotals run_sweep(bool pruning_and_dedup) {
    engine::EngineOptions eng;
    eng.threads = 1;
    // A bounded LRU, as a long-lived DSE service runs with: the sweep
    // touches more distinct candidate trees than the cache holds, so
    // cross-configuration revisits only survive in the candidate-dedup
    // memo (the "on" side) — the LRU alone re-pays them.
    eng.cache_capacity = 256;
    eng.candidate_dedup = pruning_and_dedup;
    engine::EvalEngine shared(eng);
    SweepTotals totals;
    for (const std::size_t capacity : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
        for (const int metric : {1, 2}) {
            ArchitectureModel m = workload();
            explore::MappingSearchOptions options;
            options.max_nodes_per_resource = capacity;
            options.metric = metric == 1 ? cost::CostMetric::exponential_metric1()
                                         : cost::CostMetric::exponential_metric2();
            options.bound_pruning = pruning_and_dedup;
            const explore::MappingSearchResult r = explore::search_mapping(m, options, shared);
            totals.evals += r.evaluations;
            totals.full_evals += r.eval_cache_misses;
            totals.bound_rejections += r.bound_rejections;
            totals.dedup_hits += r.dedup_hits;
        }
    }
    return totals;
}

void print_report() {
    bench::heading("Bound-pruned anytime search (EcoTwin trade-off sweep)");
    const SweepTotals off = run_sweep(false);
    const SweepTotals on = run_sweep(true);
    bench::row("engine submissions, exhaustive", static_cast<double>(off.evals));
    bench::row("engine submissions, pruned+dedup", static_cast<double>(on.evals));
    bench::row("full evaluations, exhaustive", static_cast<double>(off.full_evals));
    bench::row("full evaluations, pruned+dedup", static_cast<double>(on.full_evals));
    bench::row("bound rejections", static_cast<double>(on.bound_rejections));
    bench::row("dedup hits", static_cast<double>(on.dedup_hits));
    if (on.full_evals > 0) {
        bench::row("full-evaluation reduction",
                   static_cast<double>(off.full_evals) / static_cast<double>(on.full_evals));
    }
    bench::note("fronts and searched models are bitwise identical on/off");
    bench::note("(asserted by tests/test_mapping_search.cpp at threads 1/2/4/8).");
}

// The sweep with the staged pipeline off: every candidate pays fault
// tree + BDD unless the LRU cache happens to hold it.
void BM_PruningSweep_Off(benchmark::State& state) {
    SweepTotals totals;
    bench::time_batch(state, "bench.pruning_sweep_off_ns", [&] {
        totals = run_sweep(false);
        benchmark::DoNotOptimize(totals);
    });
    state.counters["evals"] = static_cast<double>(totals.evals);
    state.counters["full_evals"] = static_cast<double>(totals.full_evals);
    state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_PruningSweep_Off)->Unit(benchmark::kMillisecond)->UseManualTime();

// The same sweep with bound pruning and candidate dedup on.
void BM_PruningSweep_On(benchmark::State& state) {
    SweepTotals totals;
    bench::time_batch(state, "bench.pruning_sweep_on_ns", [&] {
        totals = run_sweep(true);
        benchmark::DoNotOptimize(totals);
    });
    state.counters["evals"] = static_cast<double>(totals.evals);
    state.counters["full_evals"] = static_cast<double>(totals.full_evals);
    state.counters["bound_rejections"] = static_cast<double>(totals.bound_rejections);
    state.counters["dedup_hits"] = static_cast<double>(totals.dedup_hits);
    state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_PruningSweep_On)->Unit(benchmark::kMillisecond)->UseManualTime();

// Bound-check cost per candidate: one context build (fault tree + cut
// sets + factorised Bonferroni precompute) amortised over every
// same-kind pair's bounds() query — the price the pipeline pays per
// candidate before deciding whether the engine sees it.
void BM_BoundCheck(benchmark::State& state) {
    const ArchitectureModel m = workload();
    const cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    const double current = cost::total_cost(m, metric);
    std::vector<std::pair<ResourceId, ResourceId>> pairs;
    const std::vector<ResourceId> used = m.used_resources();
    for (ResourceId a : used) {
        for (ResourceId b : used) {
            if (a != b && m.resources().node(a).kind == m.resources().node(b).kind) {
                pairs.emplace_back(a, b);
            }
        }
    }
    bench::time_batch(state, "bench.bound_check_ns", [&] {
        const explore::MergeBoundContext ctx(m, metric, {}, current);
        double acc = 0.0;
        for (const auto& [into, from] : pairs) {
            const auto b = ctx.bounds(into, from);
            acc += b.probability_lb + b.cost_lb;
        }
        benchmark::DoNotOptimize(acc);
    });
    state.counters["candidates"] = static_cast<double>(pairs.size());
    state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_BoundCheck)->Unit(benchmark::kMicrosecond)->UseManualTime();

// Front-update latency: ParetoTracker::insert over a random offer
// stream — the synchronous cost each accepted state adds to the walk
// when anytime streaming is on.
void BM_FrontUpdate(benchmark::State& state) {
    std::mt19937 rng(97);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    std::vector<explore::TradeoffPoint> offers(4096);
    for (explore::TradeoffPoint& p : offers) {
        p.cost = uniform(rng) * 100.0;
        p.failure_probability = uniform(rng);
    }
    bench::time_batch(state, "bench.front_update_ns", [&] {
        explore::ParetoTracker tracker;
        for (const explore::TradeoffPoint& p : offers) tracker.insert(p);
        benchmark::DoNotOptimize(tracker.front().size());
    });
    state.counters["offers"] = static_cast<double>(offers.size());
    state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_FrontUpdate)->Unit(benchmark::kMicrosecond)->UseManualTime();

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

#!/usr/bin/env python3
"""Convert GCC/Clang-style diagnostics to SARIF 2.1.0.

Reads a build or clang-tidy log and emits one SARIF run on stdout, so
CI can merge compiler/-Wthread-safety/clang-tidy findings with the
asilkit-archcheck report into a single static-analysis artifact (see
tools/ci/merge_sarif.py and docs/static-analysis.md).

Recognized line shape (clang, gcc, and run-clang-tidy all emit it):

    path/to/file.cpp:12:34: warning: message text [check-or-Wflag]

Notes are attached to nothing and skipped; duplicate findings (same
file/line/rule/message — headers re-reported per translation unit) are
collapsed.  Exits 0 regardless of findings: converting is not judging.
Usage: diagnostics_to_sarif.py --tool NAME [--root DIR] [LOGFILE...]
"""

import argparse
import json
import os
import re
import sys

SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
    "sarif-schema-2.1.0.json"
)

DIAG_RE = re.compile(
    r"^(?P<file>[^:\s][^:]*?):(?P<line>\d+)(?::(?P<col>\d+))?:\s+"
    r"(?P<level>warning|error):\s+(?P<msg>.*?)"
    r"(?:\s+\[(?P<rule>[^\[\]]+)\])?$"
)


def parse_logs(streams, root):
    findings = {}
    for stream in streams:
        for raw in stream:
            m = DIAG_RE.match(raw.rstrip("\n"))
            if not m:
                continue
            path = os.path.normpath(m.group("file"))
            # Repo-relative URIs keep the SARIF portable across runners.
            abs_root = os.path.abspath(root)
            abs_path = os.path.abspath(path)
            if abs_path.startswith(abs_root + os.sep):
                path = os.path.relpath(abs_path, abs_root)
            rule = m.group("rule") or "diagnostic"
            key = (path, int(m.group("line")), rule, m.group("msg"))
            findings[key] = {
                "level": m.group("level"),
                "col": int(m.group("col") or 0),
            }
    return findings


def to_sarif(findings, tool_name):
    rules = sorted({rule for (_, _, rule, _) in findings})
    rule_index = {rule: i for i, rule in enumerate(rules)}
    results = []
    for (path, line, rule, msg), extra in sorted(findings.items()):
        region = {"startLine": line}
        if extra["col"]:
            region["startColumn"] = extra["col"]
        results.append(
            {
                "ruleId": rule,
                "ruleIndex": rule_index[rule],
                "level": extra["level"],
                "message": {"text": msg},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": path.replace(os.sep, "/")},
                            "region": region,
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": [{"id": rule} for rule in rules],
                    }
                },
                "results": results,
            }
        ],
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tool", required=True, help="SARIF driver name")
    parser.add_argument("--root", default=".", help="repo root for relative URIs")
    parser.add_argument("logs", nargs="*", help="log files (default: stdin)")
    args = parser.parse_args()

    if args.logs:
        streams = [open(path, encoding="utf-8", errors="replace") for path in args.logs]
    else:
        streams = [sys.stdin]
    findings = parse_logs(streams, args.root)
    json.dump(to_sarif(findings, args.tool), sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()

file(REMOVE_RECURSE
  "CMakeFiles/asilkit_cli.dir/asilkit_cli.cpp.o"
  "CMakeFiles/asilkit_cli.dir/asilkit_cli.cpp.o.d"
  "asilkit_cli"
  "asilkit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

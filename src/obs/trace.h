// Span tracer: RAII spans recorded into thread-local buffers, drained
// to Chrome trace-event JSON (loadable in ui.perfetto.dev and
// chrome://tracing).
//
// Contract with the hot paths it instruments:
//   * disabled cost is ONE branch — ObsSpan's constructor reads a
//     process-global atomic flag and returns; no clock, no allocation,
//     no stores (the null sink);
//   * enabled cost is lock-cheap — events append to a per-thread buffer
//     whose mutex is uncontended except during a drain (the tracer
//     never shares a buffer between threads), so pool workers tracing
//     per-candidate spans do not serialise on each other;
//   * tracing NEVER changes results — spans only read the clock and
//     write side buffers, so DSE output is bitwise identical with
//     tracing on or off at any thread count (tested).
//
// Each span emits a "B" (begin) and "E" (end) event with the thread's
// stable tid, so spans nest per thread and the exported JSON is
// balance-checkable.  Buffers are bounded (kMaxEventsPerThread); events
// beyond the cap are counted as dropped and reported in the export's
// "otherData" rather than silently truncated.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

namespace asilkit::obs {

namespace detail {
extern std::atomic<bool> g_tracing;
void record(char ph, const char* name, const char* cat, const char* arg_key,
            double arg_value) noexcept;
}  // namespace detail

/// True while a trace session is active.  Relaxed: instrumentation
/// sites tolerate seeing the flag flip a few events late.
[[nodiscard]] inline bool tracing_enabled() noexcept {
    return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Starts a session: clears previously buffered events, re-anchors the
/// timestamp epoch, enables span recording.
void start_tracing();

/// Stops recording.  Buffered events stay available for export.
void stop_tracing();

/// Drains every thread's buffer into one Chrome trace-event JSON
/// document ({"traceEvents":[...]}).  Draining consumes the events;
/// close all spans before exporting or "B" events will outnumber "E"s.
[[nodiscard]] std::string trace_to_json();
void write_trace(std::ostream& os);

/// Events recorded this session (approximate while threads are still
/// tracing) and events dropped at the per-thread cap.
[[nodiscard]] std::uint64_t trace_event_count();
[[nodiscard]] std::uint64_t trace_dropped_count();

/// One buffered span event, exposed for in-process aggregation (the
/// span profiler, obs/profile.h).  `name` and `cat` point at the string
/// literals the instrumentation sites recorded — valid for the process
/// lifetime, never owned.
struct TraceEvent {
    const char* name;
    const char* cat;
    std::uint64_t ts_ns;  ///< nanoseconds since the session epoch
    std::uint32_t tid;    ///< stable per-thread id (0, 1, ...)
    char ph;              ///< 'B', 'E' or 'I'
};

/// Copies every buffered event, sorted by timestamp, WITHOUT consuming
/// the buffers (unlike trace_to_json's drain) — so a profile can be
/// aggregated and the full trace still exported afterwards.  The sort
/// is stable, so each thread's events keep record order and per-thread
/// B/E nesting survives for stack replay.
[[nodiscard]] std::vector<TraceEvent> snapshot_events();

/// A zero-duration instant event ("I"), for marking discrete
/// occurrences such as a BDD unique-table resize.
inline void trace_instant(const char* name, const char* category) noexcept {
    if (!tracing_enabled()) return;
    detail::record('I', name, category, nullptr, 0.0);
}
inline void trace_instant(const char* name, const char* category, const char* arg_key,
                          double arg_value) noexcept {
    if (!tracing_enabled()) return;
    detail::record('I', name, category, arg_key, arg_value);
}

/// RAII span.  `name` and `category` must be string literals (or
/// otherwise outlive the trace session): events store the pointers, not
/// copies, to keep the record path allocation-free.
class ObsSpan {
public:
    ObsSpan(const char* name, const char* category) noexcept {
        if (!tracing_enabled()) return;  // the one disabled-mode branch
        open(name, category, nullptr, 0.0);
    }
    /// Span with one numeric argument attached to its begin event
    /// (shown in the Perfetto details pane).
    ObsSpan(const char* name, const char* category, const char* arg_key,
            double arg_value) noexcept {
        if (!tracing_enabled()) return;
        open(name, category, arg_key, arg_value);
    }
    ~ObsSpan() {
        // A span that began records its end even if tracing stopped
        // meanwhile, keeping B/E balanced within a session.
        if (name_ != nullptr) detail::record('E', name_, cat_, nullptr, 0.0);
    }

    ObsSpan(const ObsSpan&) = delete;
    ObsSpan& operator=(const ObsSpan&) = delete;

private:
    void open(const char* name, const char* category, const char* arg_key,
              double arg_value) noexcept {
        name_ = name;
        cat_ = category;
        detail::record('B', name, category, arg_key, arg_value);
    }

    const char* name_ = nullptr;
    const char* cat_ = nullptr;
};

}  // namespace asilkit::obs

#include "ftree/builder.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ftree/cft.h"
#include "model/blocks.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::ftree {
namespace {

/// Collects the base-event names an application node would contribute
/// (used for the branch-independence check before approximating a block).
void collect_event_names(const ArchitectureModel& m, NodeId n, bool with_locations,
                         std::unordered_set<std::string>& out) {
    for (ResourceId r : m.mapped_resources(n)) {
        out.insert(std::string(kResourceEventPrefix) + m.resources().node(r).name);
        if (with_locations) {
            for (LocationId p : m.resource_locations(r)) {
                out.insert(std::string(kLocationEventPrefix) + m.physical().node(p).name);
            }
        }
    }
}

class Builder {
public:
    using FragmentSource = std::function<const ComponentFragment*(NodeId)>;

    Builder(const ArchitectureModel& m, const FtBuildOptions& options,
            const FragmentSource* fragments = nullptr)
        : m_(m), options_(options), fragments_(fragments) {}

    FtBuildResult run() {
        std::vector<NodeId> actuators;
        std::vector<NodeId> qm_actuators;
        for (NodeId n : m_.app().node_ids()) {
            if (m_.app().node(n).kind != NodeKind::Actuator) continue;
            if (m_.app().node(n).asil.level == Asil::QM && !options_.include_qm_actuators) {
                qm_actuators.push_back(n);
            } else {
                actuators.push_back(n);
            }
        }
        if (actuators.empty()) actuators = std::move(qm_actuators);
        if (actuators.empty()) {
            throw AnalysisError("fault-tree generation requires at least one actuator node");
        }
        if (options_.approximate) index_blocks();

        std::vector<FtRef> tops;
        for (NodeId a : actuators) {
            if (auto g = gate_for(a)) tops.push_back(*g);
        }
        if (tops.size() == 1) {
            result_.tree.set_top(tops.front());
        } else {
            result_.tree.set_top(result_.tree.add_gate("system_failure", GateKind::Or, tops));
        }
        return std::move(result_);
    }

private:
    /// Caches the block headed by each merger and whether it may be
    /// approximated (well-formed + branch base-event independence).
    void index_blocks() {
        for (RedundantBlock& block : find_redundant_blocks(m_)) {
            bool collapsible = block.well_formed;
            if (collapsible) {
                // Branch independence: pairwise disjoint base-event sets.
                std::vector<std::unordered_set<std::string>> branch_events;
                for (const Branch& b : block.branches) {
                    std::unordered_set<std::string> events;
                    for (NodeId n : b.nodes) {
                        collect_event_names(m_, n, options_.include_location_events, events);
                    }
                    branch_events.push_back(std::move(events));
                }
                for (std::size_t i = 0; collapsible && i < branch_events.size(); ++i) {
                    for (std::size_t j = i + 1; collapsible && j < branch_events.size(); ++j) {
                        for (const std::string& e : branch_events[i]) {
                            if (branch_events[j].contains(e)) {
                                result_.warnings.push_back(
                                    "approximation disabled for block at merger '" +
                                    m_.app().node(block.merger).name +
                                    "': branches share base event '" + e +
                                    "' (potential common cause fault)");
                                collapsible = false;
                                break;
                            }
                        }
                    }
                }
                for (const Branch& b : block.branches) {
                    if (b.feeding_splitters.empty()) collapsible = false;
                }
            }
            const NodeId merger = block.merger;
            blocks_.emplace(merger, std::pair{std::move(block), collapsible});
        }
    }

    /// Adds the intrinsic base events of `n` to `children`.  When a
    /// fragment source is wired in (assemble_fault_tree), the pre-built
    /// fragment replaces the model/rate-table lookups; the events replay
    /// through add_basic_event in the same order, so the arena is
    /// bitwise identical to the model-driven path.
    void add_intrinsic_events(NodeId n, std::vector<FtRef>& children) {
        const ComponentFragment* fragment =
            fragments_ != nullptr ? (*fragments_)(n) : nullptr;
        if (fragment != nullptr) {
            if (fragment->no_resource) {
                result_.warnings.push_back(
                    "node '" + m_.app().node(n).name +
                    "' has no mapped resource; it contributes no base event");
            }
            for (const BasicEvent& e : fragment->events) {
                children.push_back(result_.tree.add_basic_event(e.name, e.lambda));
            }
        } else {
            const auto& resources = m_.mapped_resources(n);
            if (resources.empty()) {
                result_.warnings.push_back(
                    "node '" + m_.app().node(n).name +
                    "' has no mapped resource; it contributes no base event");
            }
            for (ResourceId r : resources) {
                const Resource& res = m_.resources().node(r);
                children.push_back(
                    result_.tree.add_basic_event(std::string(kResourceEventPrefix) + res.name,
                                                 options_.rates.resource_rate(res)));
                if (options_.include_location_events) {
                    for (LocationId p : m_.resource_locations(r)) {
                        const Location& loc = m_.physical().node(p);
                        children.push_back(result_.tree.add_basic_event(
                            std::string(kLocationEventPrefix) + loc.name,
                            options_.rates.location_rate(loc)));
                    }
                }
            }
        }
        // A resource mapped twice (e.g. a node on two shared ECUs in one
        // location) must not OR the same event twice; dedup keeps gate
        // child lists canonical.
        std::sort(children.begin(), children.end(), [](FtRef a, FtRef b) {
            return std::pair{a.kind, a.index} < std::pair{b.kind, b.index};
        });
        children.erase(std::unique(children.begin(), children.end()), children.end());
    }

    /// OR of a gate set, hash-consed on the (sorted, deduplicated) child
    /// set so that structurally identical inputs yield the same FtRef.
    FtRef or_of(std::vector<FtRef> gates, const std::string& name) {
        std::sort(gates.begin(), gates.end(), [](FtRef a, FtRef b) {
            return std::pair{a.kind, a.index} < std::pair{b.kind, b.index};
        });
        gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
        if (gates.size() == 1) return gates.front();
        std::vector<std::uint64_t> key;
        key.reserve(gates.size());
        for (FtRef g : gates) {
            key.push_back((static_cast<std::uint64_t>(g.kind) << 32) | g.index);
        }
        if (auto it = or_cache_.find(key); it != or_cache_.end()) return it->second;
        const FtRef gate = result_.tree.add_gate(name, GateKind::Or, std::move(gates));
        or_cache_.emplace(std::move(key), gate);
        return gate;
    }

    /// Failure gate of application node `n`; nullopt when `n` is on the
    /// current traversal stack (cycle cut).
    std::optional<FtRef> gate_for(NodeId n) {
        if (auto it = memo_.find(n); it != memo_.end()) return it->second;
        if (on_stack_.contains(n)) {
            ++result_.cycles_cut;
            return std::nullopt;
        }
        on_stack_.insert(n);
        const AppNode& node = m_.app().node(n);

        std::vector<FtRef> children;
        add_intrinsic_events(n, children);

        const bool is_merger = node.kind == NodeKind::Merger;
        if (is_merger) {
            if (auto child = merger_input_gate(n)) children.push_back(*child);
        } else {
            for (NodeId p : m_.app().predecessors(n)) {
                if (auto g = gate_for(p)) children.push_back(*g);
            }
        }

        const FtRef gate = result_.tree.add_gate(std::string(kNodeGatePrefix) + node.name,
                                                 GateKind::Or, std::move(children));
        on_stack_.erase(n);
        memo_.emplace(n, gate);
        return gate;
    }

    /// The AND gate over a merger's redundant inputs — collapsed to the
    /// feeding splitters when the Section V approximation applies.
    std::optional<FtRef> merger_input_gate(NodeId merger) {
        const AppNode& node = m_.app().node(merger);
        if (options_.approximate) {
            if (auto it = blocks_.find(merger); it != blocks_.end() && it->second.second) {
                const RedundantBlock& block = it->second.first;
                // One input per branch: the (OR of the) splitter gates that
                // feed it.  Branches fed by the same splitters collapse to
                // the SAME gate, and AND(g, g) == g, so the AND is dropped
                // when every branch reduces to one shared input — this is
                // what halves the path count per decomposition (Sec. V).
                std::vector<FtRef> branch_inputs;
                for (const Branch& b : block.branches) {
                    std::vector<FtRef> splitter_gates;
                    for (NodeId s : b.feeding_splitters) {
                        if (auto g = gate_for(s)) splitter_gates.push_back(*g);
                    }
                    if (splitter_gates.empty()) continue;
                    branch_inputs.push_back(or_of(splitter_gates, "approx_in:" + node.name));
                }
                std::sort(branch_inputs.begin(), branch_inputs.end(), [](FtRef a, FtRef b) {
                    return std::pair{a.kind, a.index} < std::pair{b.kind, b.index};
                });
                branch_inputs.erase(std::unique(branch_inputs.begin(), branch_inputs.end()),
                                    branch_inputs.end());
                ++result_.approximated_blocks;
                if (branch_inputs.empty()) return std::nullopt;
                if (branch_inputs.size() == 1) return branch_inputs.front();
                return result_.tree.add_gate("and:" + node.name, GateKind::And,
                                             std::move(branch_inputs));
            }
        }
        std::vector<FtRef> inputs;
        for (NodeId p : m_.app().predecessors(merger)) {
            if (auto g = gate_for(p)) inputs.push_back(*g);
        }
        if (inputs.empty()) return std::nullopt;
        return result_.tree.add_gate("and:" + node.name, GateKind::And, std::move(inputs));
    }

    const ArchitectureModel& m_;
    const FtBuildOptions& options_;
    const FragmentSource* fragments_ = nullptr;
    FtBuildResult result_;
    std::unordered_map<NodeId, FtRef> memo_;
    std::unordered_set<NodeId> on_stack_;
    std::unordered_map<NodeId, std::pair<RedundantBlock, bool>> blocks_;
    std::map<std::vector<std::uint64_t>, FtRef> or_cache_;
};

/// Shared book-keeping for both build entry points: tree counters plus
/// the gate-construction counter the incremental benchmarks read.
void record_build(const FtBuildResult& result) {
    static obs::Counter& trees = obs::Registry::global().counter("ftree.trees_built");
    static obs::Counter& gates = obs::Registry::global().counter("ftree.gates_built");
    static obs::Counter& cycles = obs::Registry::global().counter("ftree.cycles_cut");
    static obs::Counter& approx = obs::Registry::global().counter("ftree.approx_blocks");
    static obs::Gauge& tree_nodes = obs::Registry::global().gauge("ftree.tree_nodes");
    trees.inc();
    gates.add(result.tree.gates().size());
    cycles.add(result.cycles_cut);
    approx.add(result.approximated_blocks);
    tree_nodes.set(static_cast<double>(result.tree.basic_events().size() +
                                       result.tree.gates().size()));
}

}  // namespace

FtBuildResult build_fault_tree(const ArchitectureModel& m, const FtBuildOptions& options) {
    const obs::ObsSpan span("build_fault_tree", "ftree");
    FtBuildResult result = Builder(m, options).run();
    record_build(result);
    return result;
}

FtBuildResult assemble_fault_tree(
    const ArchitectureModel& m, const FtBuildOptions& options,
    const std::function<const ComponentFragment*(NodeId)>& fragment_of) {
    FtBuildResult result = Builder(m, options, &fragment_of).run();
    record_build(result);
    return result;
}

}  // namespace asilkit::ftree

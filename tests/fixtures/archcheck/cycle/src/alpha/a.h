#pragma once
#include "alpha/b.h"
inline int alpha_a() { return alpha_b() + 1; }

// asilkit_cli — command-line front end for the asilkit library.
// All logic lives in cli::run_cli (src/cli/cli.cpp), kept separate so the
// test suite drives the same code paths.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    return asilkit::cli::run_cli(args, std::cout, std::cerr);
}

#include "archcheck.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string_view>
#include <utility>

#include "core/error.h"
#include "core/version.h"
#include "io/sarif.h"

namespace asilkit::archcheck {
namespace fs = std::filesystem;

namespace {

/// A quoted include directive found in a file.
struct Include {
    std::string target;  ///< path as written between the quotes
    int line = 0;        ///< 1-based
};

bool has_source_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Parses `#include "..."` directives (leading whitespace allowed, as is
/// whitespace between '#' and 'include').  Angle-bracket includes are
/// system/third-party and carry no layering obligations.
std::vector<Include> parse_includes(const fs::path& path) {
    std::ifstream in(path);
    if (!in) throw IoError("cannot read " + path.string());
    std::vector<Include> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string_view s(line);
        const auto skip_ws = [&s] {
            while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
        };
        skip_ws();
        if (s.empty() || s.front() != '#') continue;
        s.remove_prefix(1);
        skip_ws();
        if (!s.starts_with("include")) continue;
        s.remove_prefix(7);
        skip_ws();
        if (s.empty() || s.front() != '"') continue;
        s.remove_prefix(1);
        const auto close = s.find('"');
        if (close == std::string_view::npos) continue;
        out.push_back(Include{std::string(s.substr(0, close)), lineno});
    }
    return out;
}

/// Root-relative path with '/' separators (stable across platforms, and
/// the form SARIF artifactLocation.uri wants).
std::string rel_key(const fs::path& p, const fs::path& root) {
    return p.lexically_relative(root).generic_string();
}

/// Layer of a root-relative path: its first directory component, or ""
/// for files directly under the root (the asilkit.h umbrella), which
/// are exempt from layer checks.
std::string layer_of(const std::string& rel) {
    const auto slash = rel.find('/');
    return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

}  // namespace

std::set<std::string> LayerSpec::closure(const std::string& layer) const {
    std::set<std::string> seen;
    std::vector<const std::string*> stack;
    const auto push_deps = [&](const std::string& l) {
        if (const auto it = allowed.find(l); it != allowed.end()) {
            for (const std::string& dep : it->second) {
                if (seen.insert(dep).second) stack.push_back(&dep);
            }
        }
    };
    push_deps(layer);
    while (!stack.empty()) {
        const std::string& next = *stack.back();
        stack.pop_back();
        push_deps(next);
    }
    seen.erase(layer);
    return seen;
}

LayerSpec parse_layers(const io::Json& doc) {
    if (!doc.is_object()) throw IoError("layers document must be a JSON object");
    const io::Json& layers = doc.get_or_null("layers");
    if (!layers.is_object()) throw IoError("layers document needs a \"layers\" object");
    LayerSpec spec;
    for (const auto& [name, deps] : layers.as_object()) {
        if (!name.empty() && name.front() == '_') continue;  // comment convention
        if (!deps.is_array()) {
            throw IoError("layer \"" + name + "\" must map to an array of layer names");
        }
        std::vector<std::string> list;
        list.reserve(deps.as_array().size());
        for (const io::Json& dep : deps.as_array()) list.push_back(dep.as_string());
        std::sort(list.begin(), list.end());
        spec.allowed.emplace(name, std::move(list));
    }
    if (spec.allowed.empty()) throw IoError("layers document declares no layers");
    return spec;
}

LayerSpec load_layers(const std::string& path) {
    return parse_layers(io::load_json_file(path));
}

Report analyze_tree(const std::string& root_path, const LayerSpec& spec) {
    const fs::path root = fs::path(root_path).lexically_normal();
    if (!fs::is_directory(root)) throw IoError("archcheck root is not a directory: " + root_path);

    Report report;

    // ---- declared-DAG sanity: the spec itself must be acyclic and
    // closed (every referenced dep declared).  Violations here poison
    // every later judgement, so they are reported and checking continues
    // with the edges that ARE well-defined.
    {
        // Colors: 0 = unvisited, 1 = on stack, 2 = done.
        std::map<std::string, int> color;
        std::vector<std::string> cycle;
        const std::function<bool(const std::string&)> dfs = [&](const std::string& l) -> bool {
            color[l] = 1;
            if (const auto it = spec.allowed.find(l); it != spec.allowed.end()) {
                for (const std::string& dep : it->second) {
                    if (!spec.declares(dep)) {
                        report.findings.push_back(
                            {kRuleSpecCycle, "error",
                             "layer \"" + l + "\" declares undeclared dependency \"" + dep +
                                 "\" in layers.json",
                             "", 0});
                        continue;
                    }
                    const int c = color[dep];
                    if (c == 1) {
                        cycle.push_back(dep);
                        return true;
                    }
                    if (c == 0 && dfs(dep)) {
                        cycle.push_back(dep);
                        return true;
                    }
                }
            }
            color[l] = 2;
            return false;
        };
        for (const auto& [layer, deps] : spec.allowed) {
            if (color[layer] == 0 && dfs(layer)) {
                std::string msg = "declared layer DAG is cyclic:";
                for (auto it = cycle.rbegin(); it != cycle.rend(); ++it) msg += " " + *it;
                report.findings.push_back({kRuleSpecCycle, "error", msg, "", 0});
                break;
            }
        }
    }

    // ---- scan the tree: files in deterministic order so finding order
    // (and SARIF diffs) are stable across filesystems.
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
            files.push_back(entry.path().lexically_normal());
        }
    }
    std::sort(files.begin(), files.end());
    report.files_scanned = files.size();

    std::set<std::string> known;  // root-relative keys of scanned files
    for (const fs::path& f : files) known.insert(rel_key(f, root));

    // Adjacency (by root-relative key) for cycle detection, plus the
    // per-edge line anchors for reporting.
    std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
    std::set<std::string> undeclared_reported;
    std::set<std::string> layers_seen;

    for (const fs::path& f : files) {
        const std::string from = rel_key(f, root);
        const std::string from_layer = layer_of(from);
        if (!from_layer.empty()) {
            layers_seen.insert(from_layer);
            if (!spec.declares(from_layer) && undeclared_reported.insert(from_layer).second) {
                report.findings.push_back(
                    {kRuleUndeclaredLayer, "error",
                     "directory \"" + from_layer +
                         "\" is not declared in layers.json (first file: " + from + ")",
                     from, 0});
            }
        }
        const std::set<std::string> reach =
            from_layer.empty() ? std::set<std::string>{} : spec.closure(from_layer);
        for (const Include& inc : parse_includes(f)) {
            // Resolve: root-relative first (the repo convention), then
            // relative to the including file.
            std::string to;
            if (known.count(inc.target) != 0) {
                to = inc.target;
            } else {
                const std::string sibling =
                    rel_key((f.parent_path() / inc.target).lexically_normal(), root);
                if (known.count(sibling) != 0) to = sibling;
            }
            if (to.empty()) continue;  // external quoted include: no obligation
            ++report.include_edges;
            edges[from].emplace_back(to, inc.line);

            const std::string to_layer = layer_of(to);
            // Umbrella files (no layer) may include anything; intra-layer
            // edges are always fine; cross-layer edges must stay inside
            // the declared closure.  Undeclared layers already reported.
            if (from_layer.empty() || to_layer.empty() || from_layer == to_layer) continue;
            if (!spec.declares(from_layer) || !spec.declares(to_layer)) continue;
            if (reach.count(to_layer) == 0) {
                report.findings.push_back(
                    {kRuleLayerViolation, "error",
                     "layer \"" + from_layer + "\" may not depend on layer \"" + to_layer +
                         "\": " + from + " includes " + to,
                     from, inc.line});
            }
        }
    }
    report.layers_seen = layers_seen.size();

    // ---- file-level include cycles: iterative coloring DFS; each cycle
    // reported once, anchored at its lexicographically-smallest member.
    {
        std::map<std::string, int> color;  // 0 unvisited / 1 on stack / 2 done
        std::vector<std::string> path_stack;
        const std::function<void(const std::string&)> dfs = [&](const std::string& file) {
            color[file] = 1;
            path_stack.push_back(file);
            if (const auto it = edges.find(file); it != edges.end()) {
                for (const auto& [to, line] : it->second) {
                    const int c = color[to];
                    if (c == 0) {
                        dfs(to);
                    } else if (c == 1) {
                        // Found a back edge: the cycle is the stack
                        // suffix starting at `to`.
                        const auto begin =
                            std::find(path_stack.begin(), path_stack.end(), to);
                        std::vector<std::string> cycle(begin, path_stack.end());
                        const auto anchor = std::min_element(cycle.begin(), cycle.end());
                        std::string msg = "include cycle:";
                        // Rotate so the message starts at the anchor —
                        // one canonical rendering per cycle.
                        std::rotate(cycle.begin(), anchor, cycle.end());
                        for (const std::string& member : cycle) msg += " " + member + " ->";
                        msg += " " + cycle.front();
                        report.findings.push_back({kRuleCycle, "error", msg, cycle.front(), 0});
                    }
                }
            }
            path_stack.pop_back();
            color[file] = 2;
        };
        for (const auto& [file, _] : edges) {
            if (color[file] == 0) dfs(file);
        }
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return report;
}

std::string to_text(const Report& report) {
    std::ostringstream os;
    for (const Finding& f : report.findings) {
        if (f.file.empty()) {
            os << "layers.json";
        } else {
            os << f.file;
            if (f.line > 0) os << ":" << f.line;
        }
        os << ": " << f.level << ": " << f.message << " [" << f.rule << "]\n";
    }
    os << report.files_scanned << " files, " << report.include_edges << " include edges, "
       << report.layers_seen << " layers: " << report.findings.size() << " finding"
       << (report.findings.size() == 1 ? "" : "s") << "\n";
    return os.str();
}

io::Json to_sarif(const Report& report) {
    io::SarifLog log("asilkit-archcheck", kVersionString,
                     "https://github.com/asilkit/asilkit");
    log.add_rule(kRuleLayerViolation,
                 "Include edge crosses layers against the declared layer DAG", "error");
    log.add_rule(kRuleCycle, "File-level include cycle", "error");
    log.add_rule(kRuleUndeclaredLayer, "Source directory not declared in layers.json",
                 "error");
    log.add_rule(kRuleSpecCycle, "Declared layer DAG is not a DAG", "error");
    for (const Finding& f : report.findings) {
        log.add_result_at(f.rule, f.level, f.message,
                          f.file.empty() ? "layers.json" : f.file, f.line);
    }
    return log.to_json();
}

}  // namespace asilkit::archcheck

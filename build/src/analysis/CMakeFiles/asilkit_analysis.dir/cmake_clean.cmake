file(REMOVE_RECURSE
  "CMakeFiles/asilkit_analysis.dir/ccf.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/ccf.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/cutsets.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/cutsets.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/fmea.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/fmea.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/importance.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/importance.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/probability.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/probability.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/sensitivity.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/sensitivity.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/simulation.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/simulation.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/tolerance.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/tolerance.cpp.o.d"
  "CMakeFiles/asilkit_analysis.dir/traceability.cpp.o"
  "CMakeFiles/asilkit_analysis.dir/traceability.cpp.o.d"
  "libasilkit_analysis.a"
  "libasilkit_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

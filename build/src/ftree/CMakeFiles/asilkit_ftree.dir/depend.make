# Empty dependencies file for asilkit_ftree.
# This may be replaced when dependencies are built.

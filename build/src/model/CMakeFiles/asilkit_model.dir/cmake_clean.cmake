file(REMOVE_RECURSE
  "CMakeFiles/asilkit_model.dir/architecture.cpp.o"
  "CMakeFiles/asilkit_model.dir/architecture.cpp.o.d"
  "CMakeFiles/asilkit_model.dir/blocks.cpp.o"
  "CMakeFiles/asilkit_model.dir/blocks.cpp.o.d"
  "CMakeFiles/asilkit_model.dir/failure_rates.cpp.o"
  "CMakeFiles/asilkit_model.dir/failure_rates.cpp.o.d"
  "CMakeFiles/asilkit_model.dir/node.cpp.o"
  "CMakeFiles/asilkit_model.dir/node.cpp.o.d"
  "CMakeFiles/asilkit_model.dir/resource.cpp.o"
  "CMakeFiles/asilkit_model.dir/resource.cpp.o.d"
  "CMakeFiles/asilkit_model.dir/validation.cpp.o"
  "CMakeFiles/asilkit_model.dir/validation.cpp.o.d"
  "libasilkit_model.a"
  "libasilkit_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "analysis/probability.h"

#include <functional>
#include <unordered_map>

#include "ftree/modules.h"

namespace asilkit::analysis {

ProbabilityResult analyze_failure_probability(const ArchitectureModel& m,
                                              const ProbabilityOptions& options) {
    ftree::FtBuildOptions build_options;
    build_options.approximate = options.approximate;
    build_options.include_location_events = options.include_location_events;
    build_options.rates = options.rates;
    ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);

    ProbabilityResult result;
    result.ft_stats = built.tree.stats();
    result.approximated_blocks = built.approximated_blocks;
    result.cycles_cut = built.cycles_cut;
    result.warnings = std::move(built.warnings);

    bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(built.tree);
    result.variables = compiled.event_of_var.size();
    result.bdd_nodes = compiled.manager.node_count(compiled.root);
    result.bdd_total_nodes = compiled.manager.size();
    const std::vector<double> probs =
        compiled.variable_probabilities(built.tree, options.mission_hours);
    result.failure_probability = compiled.manager.probability(compiled.root, probs);
    compiled.manager.flush_obs();
    return result;
}

double fault_tree_probability(const ftree::FaultTree& ft, double mission_hours) {
    const bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(ft);
    const double p = compiled.manager.probability(
        compiled.root, compiled.variable_probabilities(ft, mission_hours));
    compiled.manager.flush_obs();
    return p;
}

double rare_event_probability(const ftree::FaultTree& ft, double mission_hours) {
    std::unordered_map<std::uint32_t, double> gate_memo;
    std::function<double(ftree::FtRef)> visit = [&](ftree::FtRef r) -> double {
        if (r.kind == ftree::FtRef::Kind::Basic) {
            return bdd::basic_event_probability(ft.basic_event(r.index).lambda, mission_hours);
        }
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        double p = g.kind == ftree::GateKind::Or ? 0.0 : 1.0;
        if (g.children.empty()) p = 0.0;  // no failure mode
        for (ftree::FtRef c : g.children) {
            if (g.kind == ftree::GateKind::Or) {
                p += visit(c);
            } else {
                p *= visit(c);
            }
        }
        gate_memo.emplace(r.index, p);
        return p;
    };
    return visit(ft.top());
}

double modular_probability(const ftree::FaultTree& ft, double mission_hours) {
    const ftree::ModuleDecomposition dec = ftree::find_modules(ft);
    std::vector<double> module_prob(dec.size());
    std::vector<double> child_probs;
    for (std::size_t i = 0; i < dec.size(); ++i) {
        child_probs.clear();
        for (const std::uint32_t child : dec.modules[i].child_modules) {
            child_probs.push_back(module_prob[child]);
        }
        module_prob[i] = bdd::evaluate_module(ft, dec, i, child_probs, mission_hours).probability;
    }
    return module_prob.back();
}

}  // namespace asilkit::analysis

# Empty dependencies file for asilkit_io.
# This may be replaced when dependencies are built.

#pragma once
inline int core_base() { return 1; }

// Reduced Ordered Binary Decision Diagram (ROBDD) engine.
//
// The paper converts the generated fault tree into a BDD through an
// If-Then-Else (ITE) structure: every basic event b becomes ITE(b, 1, 0),
// OR gates combine operands with <op> = "+" and AND gates with "*", using
// the two ITE composition rules (paper Eqs. 1 and 2) that recurse on the
// smaller variable.  That construction is exactly Bryant's apply()
// algorithm; this manager implements it with the two standard dynamic
// programming tables:
//   * a unique table hash-consing (var, high, low) triples, which makes
//     equality O(1) and keeps the diagram reduced, and
//   * an apply cache memoising (op, f, g) results, which bounds apply()
//     by O(|f|*|g|) instead of the naive exponential recursion the paper
//     describes (Section V reports that cost growing exponentially with
//     the number of redundant blocks).
//
// The exact top-event probability is evaluated on the BDD by the
// Shannon expansion P(f) = p_v * P(f_high) + (1 - p_v) * P(f_low), which
// — unlike summing rates on the fault tree — is exact for repeated events.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/error.h"

namespace asilkit::bdd {

/// Handle to a BDD node within a manager.  0 and 1 are the terminals.
using BddRef = std::uint32_t;

inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

enum class BddOp : std::uint8_t { Or, And };

class BddManager {
public:
    /// `variable_count` fixes the variable order: variable 0 is tested
    /// first (the paper orders variables by a top-down, left-to-right
    /// traversal of the fault tree so that events nearest the top event
    /// come first).
    explicit BddManager(std::uint32_t variable_count);

    [[nodiscard]] std::uint32_t variable_count() const noexcept { return variable_count_; }

    /// The BDD for a single variable: ITE(var, 1, 0).
    [[nodiscard]] BddRef variable(std::uint32_t var);

    /// Reduced node (var, high, low); returns `high` when high == low.
    [[nodiscard]] BddRef make(std::uint32_t var, BddRef high, BddRef low);

    [[nodiscard]] BddRef apply(BddOp op, BddRef f, BddRef g);
    [[nodiscard]] BddRef apply_or(BddRef f, BddRef g) { return apply(BddOp::Or, f, g); }
    [[nodiscard]] BddRef apply_and(BddRef f, BddRef g) { return apply(BddOp::And, f, g); }
    [[nodiscard]] BddRef apply_not(BddRef f);

    /// Exact probability that the function is true, given independent
    /// per-variable probabilities (size must equal variable_count()).
    [[nodiscard]] double probability(BddRef f, std::span<const double> var_probability) const;

    /// Number of interior nodes reachable from `f` (terminals excluded).
    [[nodiscard]] std::size_t node_count(BddRef f) const;

    /// Total interior nodes ever created in this manager.
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size() - 2; }

    /// Evaluates f under a complete truth assignment (for property tests
    /// against brute-force enumeration).
    [[nodiscard]] bool evaluate(BddRef f, const std::vector<bool>& assignment) const;

    struct NodeView {
        std::uint32_t var;
        BddRef high;
        BddRef low;
    };
    [[nodiscard]] NodeView node(BddRef f) const;
    [[nodiscard]] static bool is_terminal(BddRef f) noexcept { return f <= kTrue; }

private:
    struct Node {
        std::uint32_t var;
        BddRef high;
        BddRef low;
    };

    struct NodeKey {
        std::uint32_t var;
        BddRef high;
        BddRef low;
        friend bool operator==(const NodeKey&, const NodeKey&) = default;
    };
    struct NodeKeyHash {
        std::size_t operator()(const NodeKey& k) const noexcept {
            std::uint64_t h = k.var;
            h = h * 0x9E3779B97F4A7C15ull + k.high;
            h = h * 0x9E3779B97F4A7C15ull + k.low;
            return static_cast<std::size_t>(h ^ (h >> 32));
        }
    };
    struct ApplyKey {
        std::uint8_t op;
        BddRef f;
        BddRef g;
        friend bool operator==(const ApplyKey&, const ApplyKey&) = default;
    };
    struct ApplyKeyHash {
        std::size_t operator()(const ApplyKey& k) const noexcept {
            std::uint64_t h = k.op;
            h = h * 0x9E3779B97F4A7C15ull + k.f;
            h = h * 0x9E3779B97F4A7C15ull + k.g;
            return static_cast<std::size_t>(h ^ (h >> 32));
        }
    };

    [[nodiscard]] std::uint32_t var_of(BddRef f) const noexcept {
        // Terminals sort after every variable.
        return f <= kTrue ? variable_count_ : nodes_[f].var;
    }

    std::uint32_t variable_count_;
    std::vector<Node> nodes_;  // [0]=false, [1]=true (var fields unused)
    std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
    std::unordered_map<ApplyKey, BddRef, ApplyKeyHash> apply_cache_;
};

}  // namespace asilkit::bdd

#include "explore/bounds.h"

#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "analysis/cutsets.h"
#include "analysis/probability.h"
#include "cost/cost_analysis.h"
#include "ftree/builder.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/longitudinal.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::explore {
namespace {

/// The search's merge move, replicated so the tests can compare a bound
/// against the exact objective of the merged model.
void apply_merge(ArchitectureModel& m, ResourceId into, ResourceId from) {
    const Asil needed = asil_max(m.resources().node(into).asil, m.resources().node(from).asil);
    m.resources().node(into).asil = needed;
    for (NodeId n : m.nodes_on_resource(from)) {
        m.map_node(n, into);
        m.unmap_node(n, from);
    }
    m.erase_resource(from);
}

/// All ordered pairs of used resources of the same kind: the superset of
/// everything the move generator can propose.
std::vector<std::pair<ResourceId, ResourceId>> same_kind_pairs(const ArchitectureModel& m) {
    std::vector<std::pair<ResourceId, ResourceId>> pairs;
    const std::vector<ResourceId> used = m.used_resources();
    for (ResourceId a : used) {
        for (ResourceId b : used) {
            if (a == b) continue;
            if (m.resources().node(a).kind != m.resources().node(b).kind) continue;
            pairs.emplace_back(a, b);
        }
    }
    return pairs;
}

std::vector<ArchitectureModel> bound_test_models() {
    std::vector<ArchitectureModel> models;
    models.push_back(scenarios::fig3_camera_gps_fusion());
    models.push_back(scenarios::ecotwin_lateral_control());
    models.push_back(scenarios::ecotwin_longitudinal_control());
    models.push_back(scenarios::chain_n_stages(5));
    // An expanded variant exercises branch regions and location events.
    ArchitectureModel expanded = scenarios::chain_n_stages(4);
    transform::expand(expanded, expanded.find_app_node("f2"));
    models.push_back(std::move(expanded));
    return models;
}

TEST(Bounds, CostBoundNeverExceedsExactMergedCost) {
    for (const ArchitectureModel& m : bound_test_models()) {
        for (const cost::CostMetric& metric :
             {cost::CostMetric::exponential_metric1(), cost::CostMetric::exponential_metric2(),
              cost::CostMetric::linear_metric3()}) {
            const double current = cost::total_cost(m, metric);
            const MergeBoundContext ctx(m, metric, {}, current);
            for (const auto& [into, from] : same_kind_pairs(m)) {
                ArchitectureModel merged = m;
                apply_merge(merged, into, from);
                const double exact = cost::total_cost(merged, metric);
                const double lb = ctx.bounds(into, from).cost_lb;
                EXPECT_LE(lb, exact) << m.name() << " " << metric.name();
                // The bound is the exact delta up to the FP slack factor.
                EXPECT_GE(lb, exact * (1.0 - 1e-9)) << m.name() << " " << metric.name();
            }
        }
    }
}

TEST(Bounds, ProbabilityBoundNeverExceedsExactMergedProbability) {
    const analysis::ProbabilityOptions prob_options;
    const cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    for (const ArchitectureModel& m : bound_test_models()) {
        const MergeBoundContext ctx(m, metric, prob_options, cost::total_cost(m, metric));
        ASSERT_TRUE(ctx.usable()) << m.name();
        EXPECT_GT(ctx.cut_count(), 0u) << m.name();
        for (const auto& [into, from] : same_kind_pairs(m)) {
            ArchitectureModel merged = m;
            apply_merge(merged, into, from);
            const double exact =
                analysis::analyze_failure_probability(merged, prob_options).failure_probability;
            const double lb = ctx.bounds(into, from).probability_lb;
            EXPECT_GE(lb, 0.0) << m.name();
            EXPECT_LE(lb, exact)
                << m.name() << ": merging " << m.resources().node(from).name << " into "
                << m.resources().node(into).name;
        }
    }
}

TEST(Bounds, RandomizedMergeSequencesStayAdmissible) {
    // Walk random merge sequences (as the search does) and re-check both
    // bounds at every state — admissibility must hold at depth, not just
    // on the seed models.
    std::mt19937 rng(23);
    const analysis::ProbabilityOptions prob_options;
    const cost::CostMetric metric = cost::CostMetric::exponential_metric2();
    for (int round = 0; round < 8; ++round) {
        ArchitectureModel m = scenarios::ecotwin_lateral_control();
        for (int depth = 0; depth < 3; ++depth) {
            const auto pairs = same_kind_pairs(m);
            if (pairs.empty()) break;
            const MergeBoundContext ctx(m, metric, prob_options, cost::total_cost(m, metric));
            const auto& [into, from] =
                pairs[std::uniform_int_distribution<std::size_t>(0, pairs.size() - 1)(rng)];
            const MergeBoundContext::Bounds b = ctx.bounds(into, from);
            apply_merge(m, into, from);
            EXPECT_LE(b.cost_lb, cost::total_cost(m, metric));
            EXPECT_LE(b.probability_lb,
                      analysis::analyze_failure_probability(m, prob_options).failure_probability);
        }
    }
}

TEST(Bounds, CommittedContextStaysAdmissibleAlongWalks) {
    // search_mapping builds ONE context and carries it across accepted
    // merges with commit() — no fault-tree rebuild, no cut
    // re-enumeration.  The materialized rewrite must keep every later
    // bound admissible, at depth, for every candidate.
    std::mt19937 rng(31);
    const analysis::ProbabilityOptions prob_options;
    const cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    for (int round = 0; round < 4; ++round) {
        ArchitectureModel m = scenarios::ecotwin_lateral_control();
        MergeBoundContext ctx(m, metric, prob_options, cost::total_cost(m, metric));
        ASSERT_TRUE(ctx.usable());
        for (int depth = 0; depth < 4; ++depth) {
            const auto pairs = same_kind_pairs(m);
            if (pairs.empty()) break;
            for (const auto& [into, from] : pairs) {
                const MergeBoundContext::Bounds b = ctx.bounds(into, from);
                ArchitectureModel merged = m;
                apply_merge(merged, into, from);
                EXPECT_LE(b.cost_lb, cost::total_cost(merged, metric)) << "depth " << depth;
                EXPECT_LE(b.probability_lb,
                          analysis::analyze_failure_probability(merged, prob_options)
                              .failure_probability)
                    << "depth " << depth;
            }
            // Accept a random merge and carry the context across it, as
            // the search does with its winner: commit() sees the
            // PRE-merge model, so the merged cost comes from a copy.
            const auto& [into, from] =
                pairs[std::uniform_int_distribution<std::size_t>(0, pairs.size() - 1)(rng)];
            ArchitectureModel merged = m;
            apply_merge(merged, into, from);
            ctx.commit(into, from, cost::total_cost(merged, metric));
            m = std::move(merged);
            EXPECT_TRUE(ctx.usable()) << "depth " << depth;
        }
    }
}

TEST(Bounds, BaseBoundNeverExceedsExactTopProbability) {
    // The Bonferroni machinery itself, checked against the exact BDD
    // probability on every test model: cut sets under-approximate the
    // top event, the bound under-approximates their union.
    for (const ArchitectureModel& m : bound_test_models()) {
        const auto built = ftree::build_fault_tree(m);
        const auto cuts = analysis::minimal_cut_sets(built.tree);
        const analysis::CutSetLowerBound lb(cuts,
                                            analysis::basic_event_probabilities(built.tree));
        const double exact =
            analysis::analyze_failure_probability(m, {}).failure_probability;
        EXPECT_GE(lb.base_bound(), 0.0);
        // The raw bound is mathematically <= exact but the two sides are
        // rounded through different FP accumulation orders; when every
        // cut survives into the bound they can differ by a final ulp.
        // MergeBoundContext absorbs this with its 1 - 1e-9 slack factor;
        // assert the same contract here.
        EXPECT_LE(lb.base_bound() * (1.0 - 1e-9), exact) << m.name();
    }
}

TEST(Bounds, ReboundMatchesFreshConstruction) {
    // rebound(sub) must equal building CutSetLowerBound from the
    // substituted cut list directly (up to FP accumulation order).
    std::mt19937 rng(29);
    std::uniform_real_distribution<double> uniform(1e-6, 1e-2);
    std::vector<double> probs(8);
    for (double& p : probs) p = uniform(rng);
    const std::vector<analysis::CutSet> cuts = {{0, 1}, {1, 2}, {3}, {4, 5}, {2, 6}};
    const analysis::CutSetLowerBound base(cuts, probs);

    // Substitute: drop cuts 1 and 4 (the ones touching event 2), re-price
    // event 2, re-introduce rewritten forms.
    analysis::CutSetLowerBound::Substitution sub;
    sub.affected = {1, 4};
    sub.replacements = {{1, 2, 7}, {2, 6}};
    sub.overrides = {{2, uniform(rng)}};

    std::vector<analysis::CutSet> direct_cuts = {{0, 1}, {3}, {4, 5}, {1, 2, 7}, {2, 6}};
    std::vector<double> direct_probs = probs;
    direct_probs[2] = sub.overrides[0].second;
    const analysis::CutSetLowerBound direct(direct_cuts, direct_probs);

    EXPECT_NEAR(base.rebound(sub), direct.base_bound(),
                1e-12 * std::max(1.0, direct.base_bound()));
}

TEST(Bounds, BoundsAreUsefullyTight) {
    // Admissible alone would allow probability_lb = 0 everywhere; the
    // pruning rate the bench claims needs bounds that actually bite.  On
    // the EcoTwin model every candidate's probability bound must be
    // strictly positive (the rewritten cuts keep real mass) and within
    // 10x of the exact merged probability for at least one candidate.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    const MergeBoundContext ctx(m, metric, {}, cost::total_cost(m, metric));
    ASSERT_TRUE(ctx.usable());
    bool some_tight = false;
    for (const auto& [into, from] : same_kind_pairs(m)) {
        const double lb = ctx.bounds(into, from).probability_lb;
        EXPECT_GT(lb, 0.0);
        ArchitectureModel merged = m;
        apply_merge(merged, into, from);
        const double exact =
            analysis::analyze_failure_probability(merged, {}).failure_probability;
        if (lb >= exact / 10.0) some_tight = true;
    }
    EXPECT_TRUE(some_tight);
}

}  // namespace
}  // namespace asilkit::explore

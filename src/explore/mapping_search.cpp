#include "explore/mapping_search.h"

#include <atomic>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cost/cost_analysis.h"
#include "lint/lint.h"
#include "model/blocks.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::explore {
namespace {

/// Region id per node: (merger id, branch index) for branch nodes, a
/// distinct trunk region otherwise.  Resources may only be merged when
/// all their nodes live in one common region.
using RegionId = std::uint64_t;
constexpr RegionId kTrunk = ~RegionId{0};

std::unordered_map<NodeId, RegionId> region_of_nodes(const ArchitectureModel& m) {
    std::unordered_map<NodeId, RegionId> region;
    for (NodeId n : m.app().node_ids()) region[n] = kTrunk;
    for (const RedundantBlock& block : find_redundant_blocks(m)) {
        if (!block.well_formed) continue;
        for (std::size_t b = 0; b < block.branches.size(); ++b) {
            const RegionId id = (static_cast<RegionId>(block.merger.value()) << 16) | b;
            for (NodeId n : block.branches[b].nodes) region[n] = id;
        }
    }
    return region;
}

/// The single region of a resource's nodes, or nullopt when mixed/empty.
std::optional<RegionId> resource_region(const ArchitectureModel& m, ResourceId r,
                                        const std::unordered_map<NodeId, RegionId>& region) {
    const auto nodes = m.nodes_on_resource(r);
    if (nodes.empty()) return std::nullopt;
    const RegionId first = region.at(nodes.front());
    for (NodeId n : nodes) {
        if (region.at(n) != first) return std::nullopt;
    }
    return first;
}

struct Objective {
    double probability;
    double cost;
    friend bool operator<(const Objective& a, const Objective& b) {
        if (a.probability != b.probability) return a.probability < b.probability;
        return a.cost < b.cost;
    }
};

Objective evaluate(const ArchitectureModel& m, const MappingSearchOptions& options,
                   engine::EvalEngine& engine) {
    return {engine.analyze(m, options.probability).failure_probability,
            cost::total_cost(m, options.metric)};
}

/// Merges `from` into `into`: remaps nodes, raises the readiness level if
/// needed, and erases `from`.
void apply_merge(ArchitectureModel& m, ResourceId into, ResourceId from) {
    const Asil needed = asil_max(m.resources().node(into).asil, m.resources().node(from).asil);
    m.resources().node(into).asil = needed;
    for (NodeId n : m.nodes_on_resource(from)) {
        m.map_node(n, into);
        m.unmap_node(n, from);
    }
    m.erase_resource(from);
}

}  // namespace

MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options) {
    engine::EvalEngine engine(options.engine);
    return search_mapping(m, options, engine);
}

MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options,
                                   engine::EvalEngine& engine) {
    const obs::ObsSpan search_span("search_mapping", "explore");
    static obs::Counter& obs_iterations = obs::Registry::global().counter("explore.iterations");
    static obs::Counter& obs_candidates =
        obs::Registry::global().counter("explore.candidates_generated");
    static obs::Gauge& obs_queue_depth = obs::Registry::global().gauge("engine.queue_depth");
    static obs::Gauge& obs_queue_depth_max =
        obs::Registry::global().gauge("engine.queue_depth_max");

    MappingSearchResult result;
    const engine::EvalEngine::Stats stats_before = engine.stats();
    {
        const Objective initial = evaluate(m, options, engine);
        result.probability_before = initial.probability;
        result.cost_before = initial.cost;
    }

    for (; result.iterations < options.max_iterations; ++result.iterations) {
        const obs::ObsSpan iter_span("iteration", "explore", "iteration",
                                     static_cast<double>(result.iterations));
        obs_iterations.inc();

        std::vector<std::pair<ResourceId, ResourceId>> moves;
        {
            const obs::ObsSpan generate_span("generate", "explore");
            const auto region = region_of_nodes(m);

            // Candidate buckets: (kind, region) -> mergeable resources.
            std::map<std::pair<int, RegionId>, std::vector<ResourceId>> buckets;
            for (ResourceId r : m.used_resources()) {
                const Resource& res = m.resources().node(r);
                if (res.kind == ResourceKind::Splitter || res.kind == ResourceKind::Merger ||
                    res.kind == ResourceKind::Sensor || res.kind == ResourceKind::Actuator) {
                    continue;  // physical devices & redundancy management stay dedicated
                }
                if (const auto reg = resource_region(m, r, region)) {
                    if (!options.include_non_branch_nodes && *reg == kTrunk) continue;
                    buckets[{static_cast<int>(res.kind), *reg}].push_back(r);
                }
            }

            // Flatten the capacity-feasible moves in deterministic bucket
            // order; the scan below walks the same order, so the selected
            // move is independent of how the batch is scheduled.
            for (const auto& [key, resources] : buckets) {
                for (std::size_t i = 0; i < resources.size(); ++i) {
                    for (std::size_t j = i + 1; j < resources.size(); ++j) {
                        const std::size_t combined = m.nodes_on_resource(resources[i]).size() +
                                                     m.nodes_on_resource(resources[j]).size();
                        if (combined > options.max_nodes_per_resource) continue;
                        moves.emplace_back(resources[i], resources[j]);
                    }
                }
            }
        }
        obs_candidates.add(moves.size());
        obs_queue_depth.set(static_cast<double>(moves.size()));
        obs_queue_depth_max.set_max(static_cast<double>(moves.size()));

        const Objective current = evaluate(m, options, engine);

        // Baseline for the lint pre-filter: candidates may not introduce
        // a new structural error over what the current model already has
        // (a pre-existing error would otherwise reject every candidate).
        std::size_t baseline_errors = 0;
        if (options.lint_prefilter) {
            const obs::ObsSpan lint_span("lint_prefilter", "explore");
            baseline_errors = lint::structural_error_count(m);
        }
        constexpr double kRejected = std::numeric_limits<double>::infinity();
        std::atomic<std::uint64_t> rejected{0};

        // Score all candidates of this iteration in two batched phases.
        // Phase 1 (parallel): copy the model, apply the move, run the
        // lint pre-filter and the (cheap) cost metric.  Provably-invalid
        // candidates are rejected before fault-tree generation; their
        // +infinity score is never selected, keeping results independent
        // of the filter.  Phase 2: hand every survivor to the engine as
        // ONE analyze_batch — that is where tree-key dedup and the
        // batched multi-lambda kernel see the whole iteration at once
        // (rejected slots stay null and are skipped).  Probabilities are
        // bitwise identical to per-candidate analyze() calls.
        std::vector<Objective> scores(moves.size());
        {
            const obs::ObsSpan evaluate_span("evaluate", "explore", "candidates",
                                             static_cast<double>(moves.size()));
            std::vector<ArchitectureModel> trials(moves.size());
            std::vector<const ArchitectureModel*> models(moves.size(), nullptr);
            engine.pool().parallel_for(moves.size(), [&](std::size_t i) {
                ArchitectureModel trial = m;
                apply_merge(trial, moves[i].first, moves[i].second);
                if (options.lint_prefilter &&
                    lint::structural_error_count(trial) > baseline_errors) {
                    scores[i] = {kRejected, kRejected};
                    rejected.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                scores[i].cost = cost::total_cost(trial, options.metric);
                trials[i] = std::move(trial);
                models[i] = &trials[i];
            });
            const std::vector<analysis::ProbabilityResult> batch =
                engine.analyze_batch(models, options.probability);
            for (std::size_t i = 0; i < moves.size(); ++i) {
                if (models[i] != nullptr) scores[i].probability = batch[i].failure_probability;
            }
        }
        obs_queue_depth.set(0.0);
        engine.note_lint_rejections(rejected.load(std::memory_order_relaxed));

        const obs::ObsSpan select_span("select", "explore");
        Objective best = current;
        std::optional<std::pair<ResourceId, ResourceId>> best_move;
        for (std::size_t i = 0; i < moves.size(); ++i) {
            if (scores[i] < best) {
                best = scores[i];
                best_move = moves[i];
            }
        }
        if (!best_move) {
            result.reached_local_optimum = true;
            break;
        }
        apply_merge(m, best_move->first, best_move->second);
        ++result.merges;
    }

    const Objective final_objective = evaluate(m, options, engine);
    result.probability_after = final_objective.probability;
    result.cost_after = final_objective.cost;

    const engine::EvalEngine::Stats stats_after = engine.stats();
    result.evaluations = stats_after.analyze_calls - stats_before.analyze_calls;
    result.eval_cache_hits = stats_after.tree_hits - stats_before.tree_hits;
    result.eval_cache_misses = stats_after.tree_misses - stats_before.tree_misses;
    result.module_cache_hits = stats_after.module_hits - stats_before.module_hits;
    result.module_cache_misses = stats_after.module_misses - stats_before.module_misses;
    result.lint_rejections = stats_after.lint_rejections - stats_before.lint_rejections;
    return result;
}

}  // namespace asilkit::explore

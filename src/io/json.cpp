#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace asilkit::io {
namespace {

const Json kNullJson{};

[[noreturn]] void type_error(const char* expected, Json::Type actual) {
    static constexpr const char* kNames[] = {"null", "bool", "number", "string", "array", "object"};
    throw IoError(std::string("json: expected ") + expected + ", got " +
                  kNames[static_cast<std::size_t>(actual)]);
}

}  // namespace

bool Json::as_bool() const {
    if (!is_bool()) type_error("bool", type());
    return std::get<bool>(value_);
}

double Json::as_number() const {
    if (!is_number()) type_error("number", type());
    return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
    const double d = as_number();
    const auto i = static_cast<std::int64_t>(d);
    if (static_cast<double>(i) != d) throw IoError("json: number is not integral");
    return i;
}

const std::string& Json::as_string() const {
    if (!is_string()) type_error("string", type());
    return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
    if (!is_array()) type_error("array", type());
    return std::get<JsonArray>(value_);
}

JsonArray& Json::as_array() {
    if (!is_array()) type_error("array", type());
    return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
    if (!is_object()) type_error("object", type());
    return std::get<JsonObject>(value_);
}

JsonObject& Json::as_object() {
    if (!is_object()) type_error("object", type());
    return std::get<JsonObject>(value_);
}

bool Json::contains(const std::string& key) const {
    return is_object() && as_object().contains(key);
}

const Json& Json::at(const std::string& key) const {
    const JsonObject& obj = as_object();
    if (auto it = obj.find(key); it != obj.end()) return it->second;
    throw IoError("json: missing key '" + key + "'");
}

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = JsonObject{};
    return as_object()[key];
}

const Json& Json::get_or_null(const std::string& key) const {
    if (is_object()) {
        const JsonObject& obj = as_object();
        if (auto it = obj.find(key); it != obj.end()) return it->second;
    }
    return kNullJson;
}

void Json::push_back(Json v) {
    if (is_null()) value_ = JsonArray{};
    as_array().push_back(std::move(v));
}

std::size_t Json::size() const {
    if (is_array()) return as_array().size();
    if (is_object()) return as_object().size();
    type_error("array or object", type());
}

// ---- writer ---------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void write_number(std::string& out, double d) {
    if (!std::isfinite(d)) throw IoError("json: cannot serialize non-finite number");
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void write_value(std::string& out, const Json& v, int indent, int depth) {
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (!pretty) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (v.type()) {
        case Json::Type::Null: out += "null"; break;
        case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
        case Json::Type::Number: write_number(out, v.as_number()); break;
        case Json::Type::String: write_escaped(out, v.as_string()); break;
        case Json::Type::Array: {
            const JsonArray& a = v.as_array();
            if (a.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (i) out += ',';
                newline(depth + 1);
                write_value(out, a[i], indent, depth + 1);
            }
            newline(depth);
            out += ']';
            break;
        }
        case Json::Type::Object: {
            const JsonObject& o = v.as_object();
            if (o.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            bool first = true;
            for (const auto& [key, val] : o) {
                if (!first) out += ',';
                first = false;
                newline(depth + 1);
                write_escaped(out, key);
                out += pretty ? ": " : ":";
                write_value(out, val, indent, depth + 1);
            }
            newline(depth);
            out += '}';
            break;
        }
    }
}

}  // namespace

std::string Json::dump(int indent) const {
    std::string out;
    write_value(out, *this, indent, 0);
    return out;
}

// ---- parser ---------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw IoError("json parse error at line " + std::to_string(line) + ", column " +
                      std::to_string(col) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char next() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (consume_literal("true")) return Json(true);
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return Json(false);
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return Json(nullptr);
                fail("invalid literal");
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        JsonObject obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(obj));
        }
        for (;;) {
            skip_ws();
            if (peek() != '"') fail("expected object key");
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.emplace(std::move(key), parse_value());
            skip_ws();
            const char c = next();
            if (c == '}') return Json(std::move(obj));
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    Json parse_array() {
        expect('[');
        JsonArray arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(arr));
        }
        for (;;) {
            arr.push_back(parse_value());
            skip_ws();
            const char c = next();
            if (c == ']') return Json(std::move(arr));
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"') return out;
            if (c == '\\') {
                const char e = next();
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': out += parse_unicode_escape(); break;
                    default: --pos_; fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
    }

    std::string parse_unicode_escape() {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = next();
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                --pos_;
                fail("invalid \\u escape");
            }
        }
        // Surrogate pair handling for non-BMP code points.
        unsigned codepoint = code;
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume_literal("\\u")) fail("unpaired high surrogate");
            unsigned low = 0;
            for (int i = 0; i < 4; ++i) {
                const char c = next();
                low <<= 4;
                if (c >= '0' && c <= '9') {
                    low |= static_cast<unsigned>(c - '0');
                } else if (c >= 'a' && c <= 'f') {
                    low |= static_cast<unsigned>(c - 'a' + 10);
                } else if (c >= 'A' && c <= 'F') {
                    low |= static_cast<unsigned>(c - 'A' + 10);
                } else {
                    --pos_;
                    fail("invalid \\u escape");
                }
            }
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            codepoint = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
        }
        // Encode as UTF-8.
        std::string out;
        if (codepoint < 0x80) {
            out += static_cast<char>(codepoint);
        } else if (codepoint < 0x800) {
            out += static_cast<char>(0xC0 | (codepoint >> 6));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        } else if (codepoint < 0x10000) {
            out += static_cast<char>(0xE0 | (codepoint >> 12));
            out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (codepoint >> 18));
            out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        }
        return out;
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (pos_ >= text_.size()) fail("truncated number");
        if (text_[pos_] == '0') {
            ++pos_;
        } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        } else {
            fail("invalid number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("invalid number fraction");
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("invalid number exponent");
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        try {
            return Json(std::stod(token));
        } catch (const std::exception&) {
            fail("number out of range");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json load_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open '" + path + "' for reading");
    std::ostringstream ss;
    ss << in.rdbuf();
    return Json::parse(ss.str());
}

void save_json_file(const Json& value, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    out << value.dump(2) << '\n';
    if (!out) throw IoError("write to '" + path + "' failed");
}

}  // namespace asilkit::io

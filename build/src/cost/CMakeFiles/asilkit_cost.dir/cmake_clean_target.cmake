file(REMOVE_RECURSE
  "libasilkit_cost.a"
)

#include "model/node.h"

#include <ostream>

namespace asilkit {

std::string_view to_string(NodeKind k) noexcept {
    switch (k) {
        case NodeKind::Sensor: return "sensor";
        case NodeKind::Actuator: return "actuator";
        case NodeKind::Functional: return "functional";
        case NodeKind::Communication: return "communication";
        case NodeKind::Splitter: return "splitter";
        case NodeKind::Merger: return "merger";
    }
    return "?";
}

std::ostream& operator<<(std::ostream& os, NodeKind k) { return os << to_string(k); }

}  // namespace asilkit
